"""Tests for the netlist model, generators and the text format."""

import random

import pytest

from repro.aig.graph import TRUE, edge_not
from repro.circuits import generators as G
from repro.circuits.combinational import COMBINATIONAL_FAMILIES
from repro.circuits.netlist import Netlist
from repro.circuits.parse import parse_netlist, serialize_netlist
from repro.errors import NetlistError


def counter_value(netlist, state):
    return sum(
        int(state[node]) << k for k, node in enumerate(netlist.latch_nodes)
    )


class TestNetlistModel:
    def test_toggler(self):
        n = Netlist("t")
        t = n.add_latch("t", init=False)
        n.set_next(t, edge_not(t))
        n.set_property(TRUE)
        n.validate()
        states = n.run_trace([{}] * 4)
        assert [s[t >> 1] for s in states] == [False, True, False, True, False]

    def test_missing_next_rejected(self):
        n = Netlist()
        n.add_latch("x")
        with pytest.raises(NetlistError):
            n.validate()

    def test_negative_latch_edge_rejected(self):
        n = Netlist()
        x = n.add_latch("x")
        with pytest.raises(NetlistError):
            n.set_next(edge_not(x), x)

    def test_set_next_on_input_rejected(self):
        n = Netlist()
        i = n.add_input()
        with pytest.raises(NetlistError):
            n.set_next(i, i)

    def test_property_accessors(self):
        n = Netlist()
        with pytest.raises(NetlistError):
            _ = n.property_edge
        n.set_property(TRUE)
        assert n.has_property
        assert n.property_edge == TRUE

    def test_init_state_edge(self):
        n = Netlist()
        a = n.add_latch("a", init=True)
        b = n.add_latch("b", init=False)
        n.set_next(a, a)
        n.set_next(b, b)
        from repro.aig.simulate import eval_edge

        init = n.init_state_edge()
        assert eval_edge(n.aig, init, {a >> 1: True, b >> 1: False})
        assert not eval_edge(n.aig, init, {a >> 1: True, b >> 1: True})

    def test_init_assignment_bitmask(self):
        n = Netlist()
        latches = n.add_latches(4, init=0b0101)
        values = [n.init_assignment()[e >> 1] for e in latches]
        assert values == [True, False, True, False]

    def test_clone_preserves_behavior(self):
        original = G.mod_counter(4, 11)
        clone, extras, node_map = original.clone()
        trace_a = original.run_trace([{}] * 13)
        trace_b = clone.run_trace([{}] * 13)
        values_a = [counter_value(original, s) for s in trace_a]
        values_b = [counter_value(clone, s) for s in trace_b]
        assert values_a == values_b

    def test_clone_transfers_extra_edges(self):
        net = G.ring_counter(4)
        bad = edge_not(net.property_edge)
        clone, (moved_bad,), node_map = net.clone([bad])
        assert moved_bad == edge_not(clone.property_edge)

    def test_clone_drops_dead_logic(self):
        net = G.mod_counter(3, 5)
        # Junk nodes not referenced by anything:
        for _ in range(10):
            net.aig.and_(2 * net.latch_nodes[0], 2 * net.latch_nodes[1])
        junk_count = net.aig.num_ands
        clone, _, _ = net.clone()
        assert clone.aig.num_ands < junk_count


class TestGenerators:
    def test_mod_counter_counts(self):
        n = G.mod_counter(4, 12)
        states = n.run_trace([{}] * 14)
        assert [counter_value(n, s) for s in states] == list(range(12)) + [0, 1, 2]

    def test_mod_counter_safe_invariant(self):
        n = G.mod_counter(4, 12)
        for state in n.run_trace([{}] * 25):
            assert n.property_holds(state)

    def test_mod_counter_bug_depth(self):
        n = G.mod_counter(4, 12, safe=False)
        states = n.run_trace([{}] * 11)
        assert all(n.property_holds(s) for s in states[:-1])
        assert not n.property_holds(states[-1])

    def test_mod_counter_bad_modulus_rejected(self):
        with pytest.raises(NetlistError):
            G.mod_counter(3, 100)

    def test_mod_counter_with_enable_holds(self):
        n = G.mod_counter(3, 5, with_enable=True)
        rng = random.Random(0)
        en = n.input_nodes[0]
        seq = [{en: rng.random() < 0.7} for _ in range(20)]
        for state in n.run_trace(seq):
            assert n.property_holds(state)

    def test_ring_counter_one_hot(self):
        n = G.ring_counter(6)
        for state in n.run_trace([{}] * 13):
            assert sum(state.values()) == 1
            assert n.property_holds(state)

    def test_ring_counter_bug_depth(self):
        n = G.ring_counter(6, safe=False, target_bit=3)
        states = n.run_trace([{}] * 3)
        assert not n.property_holds(states[3])

    def test_ring_counter_width_validation(self):
        with pytest.raises(NetlistError):
            G.ring_counter(1)

    def test_shift_register_invariant(self):
        n = G.shift_register(6)
        rng = random.Random(7)
        serial = n.input_nodes[0]
        seq = [{serial: rng.random() < 0.5} for _ in range(20)]
        for state in n.run_trace(seq):
            assert n.property_holds(state)

    def test_gray_counter_one_bit_change(self):
        n = G.gray_counter(4)
        for state in n.run_trace([{}] * 40):
            assert n.property_holds(state)

    def test_arbiter_mutual_exclusion(self):
        n = G.arbiter(4)
        rng = random.Random(3)
        seq = [
            {node: rng.random() < 0.6 for node in n.input_nodes}
            for _ in range(15)
        ]
        states = n.run_trace(seq)
        for state, step_inputs in zip(states, seq):
            assert n.property_holds(state, step_inputs)

    def test_arbiter_buggy_collision(self):
        n = G.arbiter(3, safe=False)
        all_request = {node: True for node in n.input_nodes}
        assert not n.property_holds(n.init_assignment(), all_request)

    def test_fifo_guarded_never_overflows(self):
        n = G.fifo_level(3, safe=True)
        push, pop = n.input_nodes
        rng = random.Random(1)
        seq = [
            {push: rng.random() < 0.8, pop: rng.random() < 0.2}
            for _ in range(40)
        ]
        for state in n.run_trace(seq):
            assert n.property_holds(state)

    def test_fifo_unguarded_overflows(self):
        n = G.fifo_level(3, safe=False)
        push, pop = n.input_nodes
        seq = [{push: True, pop: False}] * 7
        states = n.run_trace(seq)
        assert not n.property_holds(states[-1])

    def test_traffic_light_exclusion(self):
        n = G.traffic_light()
        for state in n.run_trace([{}] * 20):
            assert n.property_holds(state)

    def test_lfsr_never_zero(self):
        n = G.lfsr(6)
        for state in n.run_trace([{}] * 80):
            assert any(state.values())
            assert n.property_holds(state)

    def test_lfsr_tap_validation(self):
        with pytest.raises(NetlistError):
            G.lfsr(4, taps=(9,))

    def test_bug_at_depth_exact(self):
        for depth in (1, 3, 7, 12):
            n = G.bug_at_depth(depth)
            states = n.run_trace([{}] * (depth + 2))
            for k, state in enumerate(states):
                assert n.property_holds(state) == (k < depth), (depth, k)

    def test_bug_at_depth_validation(self):
        with pytest.raises(NetlistError):
            G.bug_at_depth(0)
        with pytest.raises(NetlistError):
            G.bug_at_depth(100, width=3)

    def test_families_registry(self):
        assert "mod_counter" in G.FAMILIES
        assert callable(G.FAMILIES["arbiter"])


class TestCombinationalFamilies:
    def test_all_families_build(self):
        for name, build in COMBINATIONAL_FAMILIES.items():
            if name == "random_logic":
                aig, inputs, root = build(5, 20, 0)
            elif name == "mux_tree":
                aig, inputs, root = build(2)
            elif name == "equality_slices":
                aig, inputs, root = build(3, 2)
            else:
                aig, inputs, root = build(4)
            assert aig.num_inputs == len(inputs) or name == "mux_tree"

    def test_mux_of_variants_cofactors(self):
        from repro.aig.ops import cofactor
        from repro.circuits.combinational import mux_of_variants
        from tests.conftest import edges_equivalent

        aig, inputs, root = mux_of_variants(4, similar=True)
        x = inputs[0] >> 1
        cof0 = cofactor(aig, root, x, False)
        cof1 = cofactor(aig, root, x, True)
        input_nodes = [e >> 1 for e in inputs]
        # Similar variants: the cofactors are functionally identical but
        # structurally distinct (the whole point of the T3 workload).
        assert cof0 != cof1
        assert edges_equivalent(aig, cof0, cof1, input_nodes)

    def test_mux_of_variants_dissimilar(self):
        from repro.aig.ops import cofactor
        from repro.circuits.combinational import mux_of_variants
        from tests.conftest import edges_equivalent

        aig, inputs, root = mux_of_variants(4, similar=False)
        x = inputs[0] >> 1
        cof0 = cofactor(aig, root, x, False)
        cof1 = cofactor(aig, root, x, True)
        input_nodes = [e >> 1 for e in inputs]
        assert not edges_equivalent(aig, cof0, cof1, input_nodes)

    def test_adder_carry_semantics(self):
        from repro.aig.simulate import eval_edge
        from repro.circuits.combinational import ripple_adder

        aig, inputs, carry = ripple_adder(4)
        half = len(inputs) // 2
        rng = random.Random(5)
        for _ in range(20):
            a_val = rng.randrange(16)
            b_val = rng.randrange(16)
            assignment = {}
            for k in range(4):
                assignment[inputs[k] >> 1] = bool((a_val >> k) & 1)
                assignment[inputs[half + k] >> 1] = bool((b_val >> k) & 1)
            assert eval_edge(aig, carry, assignment) == (a_val + b_val >= 16)

    def test_comparator_semantics(self):
        from repro.aig.simulate import eval_edge
        from repro.circuits.combinational import comparator

        aig, inputs, less = comparator(3)
        rng = random.Random(6)
        for _ in range(20):
            a_val = rng.randrange(8)
            b_val = rng.randrange(8)
            assignment = {}
            for k in range(3):
                assignment[inputs[k] >> 1] = bool((a_val >> k) & 1)
                assignment[inputs[3 + k] >> 1] = bool((b_val >> k) & 1)
            assert eval_edge(aig, less, assignment) == (a_val < b_val)

    def test_majority_semantics(self):
        from repro.aig.simulate import eval_edge
        from repro.circuits.combinational import majority

        aig, inputs, out = majority(5)
        rng = random.Random(8)
        for _ in range(20):
            values = [rng.random() < 0.5 for _ in inputs]
            assignment = {e >> 1: v for e, v in zip(inputs, values)}
            assert eval_edge(aig, out, assignment) == (sum(values) >= 3)

    def test_mux_tree_selects(self):
        from repro.aig.simulate import eval_edge
        from repro.circuits.combinational import mux_tree

        aig, inputs, out = mux_tree(2)
        selects, data = inputs[:2], inputs[2:]
        for sel_val in range(4):
            for active in range(4):
                assignment = {
                    selects[k] >> 1: bool((sel_val >> k) & 1) for k in range(2)
                }
                assignment.update(
                    {d >> 1: (i == active) for i, d in enumerate(data)}
                )
                assert eval_edge(aig, out, assignment) == (sel_val == active)


class TestTextFormat:
    def test_roundtrip_all_families(self):
        nets = [
            G.mod_counter(3, 6),
            G.ring_counter(4),
            G.arbiter(3),
            G.traffic_light(),
            G.fifo_level(2),
        ]
        for net in nets:
            text = serialize_netlist(net)
            parsed = parse_netlist(text)
            assert parsed.num_latches == net.num_latches
            assert parsed.num_inputs == net.num_inputs
            trace_a = net.run_trace([{}] * 8)
            trace_b = parsed.run_trace([{}] * 8)
            for sa, sb in zip(trace_a, trace_b):
                assert list(sa.values()) == list(sb.values())

    def test_parse_handwritten(self):
        text = """
        netlist demo
        input go            # free input
        latch st 0
        and g0 go !st
        next st g0
        property !st
        """
        net = parse_netlist(text)
        assert net.num_latches == 1
        assert net.num_inputs == 1

    def test_parse_unknown_signal_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("netlist x\nand g0 a b\n")

    def test_parse_missing_header_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("input a\n")

    def test_parse_unknown_keyword_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("netlist x\nwire a\n")

    def test_parse_empty_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("")

    def test_constants_usable(self):
        net = parse_netlist(
            "netlist c\nlatch x 0\nnext x 1\nproperty 1\n"
        )
        states = net.run_trace([{}] * 2)
        assert states[1][net.latch_nodes[0]] is True
