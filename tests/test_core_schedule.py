"""Tests for quantification variable-ordering heuristics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import Aig
from repro.aig.ops import and_all, or_, xor
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.schedule import (
    dependence_cost,
    get_scheduler,
    schedule_cofactor_probe,
    schedule_min_dependence,
    schedule_min_level,
    schedule_static,
    scheduler_names,
)
from repro.errors import AigError
from tests.conftest import build_random_aig, edges_equivalent


def layered_circuit():
    """f where x touches one gate and y touches a deep parity chain."""
    aig = Aig()
    x, y = aig.add_input("x"), aig.add_input("y")
    others = aig.add_inputs(4, prefix="z")
    chain = y
    for z in others:
        chain = xor(aig, chain, z)
    shallow = aig.and_(x, others[0])
    return aig, x >> 1, y >> 1, or_(aig, shallow, chain)


class TestHeuristics:
    def test_static_returns_first(self):
        aig, x, y, f = layered_circuit()
        assert schedule_static(aig, f, [y, x]) == y

    def test_min_dependence_prefers_shallow_variable(self):
        aig, x, y, f = layered_circuit()
        assert schedule_min_dependence(aig, f, [x, y]) == x
        assert dependence_cost(aig, f, x) < dependence_cost(aig, f, y)

    def test_min_level_prefers_top_slice_variable(self):
        aig = Aig()
        deep_inputs = aig.add_inputs(4, prefix="d")
        top = aig.add_input("t")
        chain = and_all(aig, deep_inputs)
        f = aig.and_(top, chain)
        # `top` feeds only the output gate; d0 percolates to the root too,
        # so both have the same deepest dependent node... use an input
        # feeding only level-1 logic instead:
        g = or_(aig, aig.and_(top, deep_inputs[0]), chain)
        assert schedule_min_level(aig, g, [top >> 1, deep_inputs[1] >> 1]) \
            == top >> 1

    def test_cofactor_probe_prefers_agreeing_cofactors(self):
        aig = Aig()
        x, y, a, b = aig.add_inputs(4)
        # x flips the function everywhere (XOR); y only gates a corner.
        f = xor(aig, x, aig.and_(a, aig.and_(b, y)))
        chosen = schedule_cofactor_probe(aig, f, [x >> 1, y >> 1])
        assert chosen == y >> 1

    def test_lookup_and_names(self):
        assert set(scheduler_names()) == {
            "static", "min_dependence", "min_level", "cofactor_probe"
        }
        for name in scheduler_names():
            assert callable(get_scheduler(name))
        with pytest.raises(AigError):
            get_scheduler("alphabetical")


class TestScheduledQuantification:
    @pytest.mark.parametrize("schedule", scheduler_names())
    def test_all_schedules_give_equivalent_results(self, schedule):
        aig, inputs, root = build_random_aig(
            num_inputs=6, num_gates=40, seed=13
        )
        variables = [e >> 1 for e in inputs[:3]]
        options = QuantifyOptions.preset("full")
        options.schedule = schedule
        outcome = quantify_exists(aig, root, variables, options)
        reference = quantify_exists(
            aig, root, variables, QuantifyOptions.preset("shannon")
        )
        assert edges_equivalent(
            aig, outcome.edge, reference.edge, [e >> 1 for e in inputs]
        )

    def test_unknown_schedule_raises(self):
        aig, inputs, root = build_random_aig(
            num_inputs=3, num_gates=10, seed=1
        )
        options = QuantifyOptions()
        options.schedule = "bogus"
        with pytest.raises(AigError):
            quantify_exists(aig, root, [inputs[0] >> 1], options)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_schedules_agree_semantically(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=25, seed=seed
        )
        variables = [e >> 1 for e in inputs[:2]]
        results = []
        for schedule in ("static", "min_dependence"):
            options = QuantifyOptions.preset("hash")
            options.schedule = schedule
            results.append(
                quantify_exists(aig, root, variables, options).edge
            )
        assert edges_equivalent(
            aig, results[0], results[1], [e >> 1 for e in inputs]
        )
