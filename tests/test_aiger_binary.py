"""Tests for the binary AIGER reader/writer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aiger_binary import (
    _decode_delta,
    _encode_delta,
    read_aig_binary,
    write_aig_binary_bytes,
)
from repro.aig.graph import Aig, edge_not
from repro.aig.ops import or_, xor
from repro.aig.simulate import truth_table
from repro.errors import AigError
from tests.conftest import build_random_aig


def roundtrip(aig, outputs):
    blob = write_aig_binary_bytes(aig, outputs)
    return read_aig_binary(blob), blob


class TestDeltaCoding:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 129, 16_383, 16_384, 2**28, 2**40]
    )
    def test_roundtrip(self, value):
        import io

        buffer = io.BytesIO()
        _encode_delta(value, buffer)
        decoded, cursor = _decode_delta(buffer.getvalue(), 0)
        assert decoded == value
        assert cursor == len(buffer.getvalue())

    def test_truncated_rejected(self):
        with pytest.raises(AigError):
            _decode_delta(bytes([0x80]), 0)


class TestRoundtrip:
    def test_single_and(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        (recovered, outputs), blob = roundtrip(aig, [f])
        assert blob.startswith(b"aig 3 2 0 1 1\n")
        nodes = recovered.inputs
        assert truth_table(recovered, outputs[0], nodes) == 0b1000

    def test_negated_output(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = edge_not(aig.and_(a, b))
        (recovered, outputs), _ = roundtrip(aig, [f])
        assert truth_table(recovered, outputs[0], recovered.inputs) == 0b0111

    def test_constant_outputs(self):
        aig = Aig()
        aig.add_input()
        (recovered, outputs), _ = roundtrip(aig, [0, 1])
        assert outputs == [0, 1]

    def test_input_names_preserved(self):
        aig = Aig()
        a = aig.add_input("clk")
        b = aig.add_input("rst")
        f = aig.and_(a, b)
        (recovered, _), blob = roundtrip(aig, [f])
        assert b"i0 clk" in blob
        assert recovered.input_name(recovered.inputs[0]) == "clk"
        assert recovered.input_name(recovered.inputs[1]) == "rst"

    @pytest.mark.parametrize("seed", range(12))
    def test_random_aigs_semantics_preserved(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=30, seed=seed
        )
        other = xor(aig, root, inputs[0])
        (recovered, outputs), _ = roundtrip(aig, [root, other])
        order_old = [e >> 1 for e in inputs]
        order_new = recovered.inputs
        assert truth_table(aig, root, order_old) == truth_table(
            recovered, outputs[0], order_new
        )
        assert truth_table(aig, other, order_old) == truth_table(
            recovered, outputs[1], order_new
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_roundtrip(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=20, seed=seed
        )
        (recovered, outputs), _ = roundtrip(aig, [root])
        assert truth_table(aig, root, [e >> 1 for e in inputs]) == \
            truth_table(recovered, outputs[0], recovered.inputs)


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(AigError):
            read_aig_binary(b"aag 1 1 0 0 0\n")

    def test_missing_header(self):
        with pytest.raises(AigError):
            read_aig_binary(b"no newline here")

    def test_latches_rejected(self):
        with pytest.raises(AigError):
            read_aig_binary(b"aig 2 1 1 0 0\n2\n")

    def test_inconsistent_counts(self):
        with pytest.raises(AigError):
            read_aig_binary(b"aig 9 2 0 0 1\n")

    def test_truncated_and_section(self):
        aig = Aig()
        a, b = aig.add_input(), aig.add_input()  # unnamed: no symbol table
        blob = write_aig_binary_bytes(aig, [aig.and_(a, b)])
        with pytest.raises(AigError):
            read_aig_binary(blob[:-1])


class TestAgainstAscii:
    def test_same_function_as_aag(self):
        from repro.aig.io import read_aag, write_aag_string

        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=25, seed=7
        )
        via_ascii, ascii_outputs = read_aag(write_aag_string(aig, [root]))
        (via_binary, binary_outputs), _ = roundtrip(aig, [root])
        assert truth_table(
            via_ascii, ascii_outputs[0], via_ascii.inputs
        ) == truth_table(via_binary, binary_outputs[0], via_binary.inputs)

    def test_binary_is_smaller(self):
        from repro.aig.io import write_aag_string

        aig, _, root = build_random_aig(num_inputs=8, num_gates=150, seed=3)
        ascii_size = len(write_aag_string(aig, [root]))
        binary_size = len(write_aig_binary_bytes(aig, [root]))
        assert binary_size < ascii_size
