"""Tests for bit-parallel simulation and truth tables."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_, xor
from repro.aig.simulate import (
    eval_edge,
    random_input_vectors,
    simulate,
    simulate_nodes,
    truth_table,
)
from repro.errors import AigError
from tests.conftest import build_random_aig


class TestEval:
    def test_and_gate(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        an, bn = a >> 1, b >> 1
        assert eval_edge(aig, f, {an: True, bn: True})
        assert not eval_edge(aig, f, {an: True, bn: False})

    def test_complement_edge(self):
        aig = Aig()
        a = aig.add_input()
        assert eval_edge(aig, edge_not(a), {a >> 1: False})

    def test_constants(self):
        aig = Aig()
        assert eval_edge(aig, TRUE, {})
        assert not eval_edge(aig, FALSE, {})

    def test_missing_inputs_default_false(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = or_(aig, a, b)
        assert not eval_edge(aig, f, {})


class TestSimulate:
    def test_matches_eval_on_words(self):
        aig, inputs, root = build_random_aig(5, 30, seed=11)
        vectors = random_input_vectors(aig, words=2, seed=3)
        out = simulate(aig, vectors, [root])[root]
        # Check bit 17 of word 0 against scalar evaluation.
        bit = 17
        assignment = {
            node: bool(int(vec[0]) >> bit & 1) for node, vec in vectors.items()
        }
        assert bool(int(out[0]) >> bit & 1) == eval_edge(aig, root, assignment)

    def test_mismatched_vector_lengths_rejected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        with pytest.raises(AigError):
            simulate(
                aig,
                {
                    a >> 1: np.zeros(1, dtype=np.uint64),
                    b >> 1: np.zeros(2, dtype=np.uint64),
                },
                [f],
            )

    def test_complement_output(self):
        aig = Aig()
        a = aig.add_input()
        ones = np.full(1, ~np.uint64(0), dtype=np.uint64)
        out = simulate(aig, {a >> 1: ones}, [a, edge_not(a)])
        assert int(out[a][0]) == 0xFFFFFFFFFFFFFFFF
        assert int(out[edge_not(a)][0]) == 0

    def test_simulate_nodes_covers_cone(self):
        aig, inputs, root = build_random_aig(4, 15, seed=12)
        vectors = random_input_vectors(aig, words=1, seed=1)
        values = simulate_nodes(aig, vectors, [root])
        for node in aig.cone([root]):
            assert node in values


class TestTruthTable:
    def test_known_function(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        assert truth_table(aig, f, [a >> 1, b >> 1]) == 0b1000

    def test_input_order_matters(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, edge_not(b))
        forward = truth_table(aig, f, [a >> 1, b >> 1])
        backward = truth_table(aig, f, [b >> 1, a >> 1])
        assert forward == 0b0010
        assert backward == 0b0100

    def test_matches_exhaustive_eval(self):
        aig, inputs, root = build_random_aig(4, 20, seed=13)
        nodes = [e >> 1 for e in inputs]
        mask = truth_table(aig, root, nodes)
        for row, values in enumerate(itertools.product([False, True], repeat=4)):
            # row bit k corresponds to input k value.
            assignment = {nodes[k]: bool((row >> k) & 1) for k in range(4)}
            assert bool((mask >> row) & 1) == eval_edge(aig, root, assignment)

    def test_wide_tables_span_words(self):
        # 7 inputs = 128 rows = 2 simulation words.
        aig = Aig()
        xs = aig.add_inputs(7)
        acc = FALSE
        for x in xs:
            acc = xor(aig, acc, x)
        mask = truth_table(aig, acc, [x >> 1 for x in xs])
        for row in (0, 1, 127):
            expected = bin(row).count("1") % 2 == 1
            assert bool((mask >> row) & 1) == expected

    def test_too_many_inputs_rejected(self):
        aig = Aig()
        xs = aig.add_inputs(17)
        with pytest.raises(AigError):
            truth_table(aig, xs[0], [x >> 1 for x in xs])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_simulation_consistency_property(seed):
    """64 parallel patterns agree with 64 scalar evaluations."""
    aig, inputs, root = build_random_aig(3, 12, seed=seed)
    vectors = random_input_vectors(aig, words=1, seed=seed)
    out = simulate(aig, vectors, [root])[root]
    for bit in range(0, 64, 17):
        assignment = {
            node: bool(int(vec[0]) >> bit & 1)
            for node, vec in vectors.items()
        }
        assert bool(int(out[0]) >> bit & 1) == eval_edge(aig, root, assignment)
