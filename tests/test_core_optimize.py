"""Tests for the don't-care optimization phase (Section 2.2)."""

import numpy as np
import pytest

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import and_all, or_, xor
from repro.aig.simulate import truth_table
from repro.core.dontcare import DontCareOracle, care_set_candidates
from repro.core.optimize import OptimizeOptions, optimize_disjunction
from repro.sweep.satsweep import SatSweeper
from tests.conftest import build_random_aig, edges_equivalent


class TestDontCareOracle:
    def setup_method(self):
        self.aig = Aig()
        self.a, self.b, self.c = self.aig.add_inputs(3)
        self.oracle = DontCareOracle(self.aig, SatSweeper(self.aig))

    def test_input_dc_accepts_valid_replacement(self):
        # care = NOT a; under it, (a AND b) == FALSE.
        care = edge_not(self.a)
        original = self.aig.and_(self.a, self.b)
        assert self.oracle.valid_under_input_dc(care, original, FALSE) is True

    def test_input_dc_rejects_invalid_replacement(self):
        care = edge_not(self.a)
        # b != c within the care set (a=0, b=1, c=0 distinguishes).
        assert self.oracle.valid_under_input_dc(care, self.b, self.c) is False

    def test_input_dc_trivially_true_for_same_edge(self):
        care = edge_not(self.a)
        assert self.oracle.valid_under_input_dc(care, self.b, self.b) is True
        assert self.oracle.stats.get("input_dc_trivial") == 1

    def test_odc_accepts_unobservable_difference(self):
        # f0 = a; f1 = a AND b.  Replacing f1 by FALSE changes f1 inside
        # the care set (nowhere actually: a=1 -> f0 covers), output same.
        f0 = self.a
        f1 = self.aig.and_(self.a, self.b)
        assert self.oracle.valid_under_odc(f0, f1, FALSE) is True

    def test_odc_rejects_observable_difference(self):
        f0 = self.aig.and_(self.a, self.b)
        f1 = self.c
        assert self.oracle.valid_under_odc(f0, f1, FALSE) is False


class TestCandidates:
    def test_constant_candidates_found(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f0 = a
        f1 = aig.and_(a, b)  # within care (a=0) f1 is constant 0
        rng = np.random.default_rng(1)
        vectors = {
            node: rng.integers(0, 2**64, size=4, dtype=np.uint64)
            for node in (a >> 1, b >> 1)
        }
        candidates = care_set_candidates(aig, f0, f1, vectors)
        assert FALSE in candidates.get(f1 >> 1, [])

    def test_merge_candidates_found(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f0 = edge_not(a)
        # Within care (a=1): (a AND b) == b.
        f1 = aig.and_(aig.and_(a, b), c)
        rng = np.random.default_rng(2)
        vectors = {
            node: rng.integers(0, 2**64, size=4, dtype=np.uint64)
            for node in (a >> 1, b >> 1, c >> 1)
        }
        candidates = care_set_candidates(aig, f0, f1, vectors)
        inner = aig.and_(a, b)
        assert b in candidates.get(inner >> 1, []) or candidates


class TestOptimizeDisjunction:
    def test_function_preserved_random(self):
        for seed in range(8):
            aig, inputs, f = build_random_aig(5, 20, seed=seed + 500)
            import random as _random

            rng = _random.Random(seed + 900)
            nodes = list(inputs)
            for _ in range(20):
                x = rng.choice(nodes) ^ rng.randint(0, 1)
                y = rng.choice(nodes) ^ rng.randint(0, 1)
                nodes.append(aig.and_(x, y))
            g = nodes[-1] ^ rng.randint(0, 1)
            reference = or_(aig, f, g)
            optimized, stats = optimize_disjunction(aig, f, g)
            assert edges_equivalent(
                aig, optimized, reference, [e >> 1 for e in inputs]
            ), seed

    def test_never_grows(self):
        for seed in range(8):
            aig, inputs, f = build_random_aig(5, 25, seed=seed + 600)
            g = aig.and_(inputs[0], inputs[1])
            baseline = or_(aig, f, g)
            optimized, stats = optimize_disjunction(aig, f, g)
            assert aig.cone_and_count(optimized) <= aig.cone_and_count(baseline)

    def test_covered_cofactor_simplifies(self):
        # f0 = a, f1 = a AND huge: f0 OR f1 == a; optimizer should find it.
        aig = Aig()
        a = aig.add_input()
        rest = aig.add_inputs(4)
        huge = and_all(aig, rest)
        f0 = a
        f1 = aig.and_(a, huge)
        optimized, stats = optimize_disjunction(aig, f0, f1)
        assert optimized == a

    def test_odc_mode_runs(self):
        aig, inputs, f = build_random_aig(4, 15, seed=700)
        g = aig.and_(inputs[0], edge_not(inputs[1]))
        reference = or_(aig, f, g)
        optimized, stats = optimize_disjunction(
            aig, f, g,
            options=OptimizeOptions(use_odc=True),
        )
        assert edges_equivalent(
            aig, optimized, reference, [e >> 1 for e in inputs]
        )

    def test_rewrite_mode_runs(self):
        aig, inputs, f = build_random_aig(4, 15, seed=701)
        g = aig.and_(inputs[2], inputs[3])
        reference = or_(aig, f, g)
        optimized, stats = optimize_disjunction(
            aig, f, g,
            options=OptimizeOptions(use_rewrite=True),
        )
        assert edges_equivalent(
            aig, optimized, reference, [e >> 1 for e in inputs]
        )

    def test_stats_sizes_reported(self):
        aig, inputs, f = build_random_aig(4, 15, seed=702)
        g = aig.and_(inputs[0], inputs[1])
        _, stats = optimize_disjunction(aig, f, g)
        assert stats.get("size_before") >= stats.get("size_after")
