"""Randomized cross-engine tests for constrained verification.

Extends the cross-engine agreement harness with random environment
constraints: ground truth comes from an explicit-state model checker that
only follows constraint-satisfying transitions (and only counts
constraint-satisfying violations).
"""

import random

import pytest

from repro.aig.simulate import eval_edge
from repro.circuits.netlist import Netlist
from repro.mc.engine import verify
from repro.mc.result import Status
from tests.test_cross_engine_random import random_netlist


def constrained_random_netlist(seed: int) -> Netlist:
    """A random netlist plus a random (satisfiable-ish) constraint."""
    rng = random.Random(seed ^ 0x5EED)
    netlist = random_netlist(seed)
    aig = netlist.aig
    pool = netlist.input_nodes + netlist.latch_nodes
    # Constraint: a disjunction of two literals — never unsatisfiable,
    # but it prunes a quarter of each step's input space on average.
    a = 2 * rng.choice(pool) ^ rng.randint(0, 1)
    b = 2 * rng.choice(pool) ^ rng.randint(0, 1)
    from repro.aig.ops import or_

    netlist.add_constraint(or_(aig, a, b))
    netlist.validate()
    return netlist


def constrained_explicit_check(netlist: Netlist) -> tuple[bool, int | None]:
    """Ground truth honouring constraints on every step."""
    latch_nodes = netlist.latch_nodes
    input_nodes = netlist.input_nodes
    num_inputs = len(input_nodes)

    def input_vectors(state):
        for bits in range(1 << num_inputs):
            step_inputs = {
                node: bool((bits >> k) & 1)
                for k, node in enumerate(input_nodes)
            }
            if netlist.constraints_hold(state, step_inputs):
                yield step_inputs

    def violates(state) -> bool:
        for step_inputs in input_vectors(state):
            assignment = dict(step_inputs)
            assignment.update(state)
            if not eval_edge(netlist.aig, netlist.property_edge, assignment):
                return True
        return False

    def key(state) -> int:
        return sum(int(state[n]) << k for k, n in enumerate(latch_nodes))

    frontier = [netlist.init_assignment()]
    seen = {key(frontier[0])}
    depth = 0
    while frontier:
        for state in frontier:
            if violates(state):
                return False, depth
        next_frontier = []
        for state in frontier:
            for step_inputs in input_vectors(state):
                successor = netlist.simulate_step(state, step_inputs)
                marker = key(successor)
                if marker not in seen:
                    seen.add(marker)
                    next_frontier.append(successor)
        frontier = next_frontier
        depth += 1
    return True, None


ENGINES = ["reach_aig", "reach_aig_fwd", "reach_bdd"]


class TestConstrainedCrossEngine:
    @pytest.mark.parametrize("seed", range(15))
    def test_engines_match_constrained_ground_truth(self, seed):
        netlist = constrained_random_netlist(seed)
        safe, depth = constrained_explicit_check(netlist)
        for engine in ENGINES:
            result = verify(constrained_random_netlist(seed), method=engine)
            expected = Status.PROVED if safe else Status.FAILED
            assert result.status is expected, (engine, seed)
            if not safe:
                assert result.trace is not None, (engine, seed)
                assert result.trace.depth == depth, (engine, seed)
                assert result.trace.validate(
                    constrained_random_netlist(seed)
                ), (engine, seed)

    @pytest.mark.parametrize("seed", range(10))
    def test_constraint_never_creates_violations(self, seed):
        """Constraining can only remove counterexamples, never add them."""
        plain = verify(random_netlist(seed), method="reach_bdd")
        constrained = verify(
            constrained_random_netlist(seed), method="reach_bdd"
        )
        if plain.status is Status.PROVED:
            assert constrained.status is Status.PROVED, seed

    @pytest.mark.parametrize("seed", range(10))
    def test_bmc_agrees_under_constraints(self, seed):
        netlist = constrained_random_netlist(seed)
        safe, depth = constrained_explicit_check(netlist)
        result = verify(
            constrained_random_netlist(seed), method="bmc", max_depth=16
        )
        if safe:
            assert result.status in (Status.UNKNOWN, Status.PROVED), seed
        else:
            assert result.status is Status.FAILED, seed
            assert result.trace.depth == depth, seed
