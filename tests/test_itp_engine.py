"""The ``itp`` engine: interpolation-based unbounded model checking.

Three layers of confidence: cross-engine agreement with the BDD
traversal and BMC on the tier-1 circuit families, a proof-checker smoke
asserting every UNSAT solve of the engine replayed its refutation, and
the acceptance case — a 64-bit counter proved without BDDs.
"""

import pytest

from repro.api import Session, VerificationTask, engine_names, get_engine
from repro.circuits import generators as G
from repro.itp import ItpOptions
from repro.mc import verify
from repro.mc.result import Status


SAFE_FAMILIES = {
    "mod_counter": lambda: G.mod_counter(4, 12),
    "ring_counter": lambda: G.ring_counter(5),
    "gray_counter": lambda: G.gray_counter(4),
    "fifo_level": lambda: G.fifo_level(3),
    "up_down": lambda: G.up_down_counter(4),
    "one_hot_fsm": lambda: G.one_hot_fsm(5),
    "arbiter": lambda: G.arbiter(4),
}

BUGGY_FAMILIES = {
    "mod_counter": lambda: G.mod_counter(4, 12, safe=False),
    "ring_counter": lambda: G.ring_counter(5, safe=False),
    "fifo_level": lambda: G.fifo_level(3, safe=False),
    "one_hot_fsm": lambda: G.one_hot_fsm(5, safe=False),
    "bug_at_depth": lambda: G.bug_at_depth(6),
}


def run_itp(netlist, max_depth=32, **overrides):
    options = ItpOptions(max_depth=max_depth, **overrides)
    return verify(netlist, method="itp", options=options)


class TestVerdicts:
    @pytest.mark.parametrize("family", list(SAFE_FAMILIES))
    def test_agrees_with_reach_bdd_on_safe(self, family):
        netlist = SAFE_FAMILIES[family]()
        reference = verify(netlist.clone()[0], method="reach_bdd")
        assert reference.status is Status.PROVED
        result = run_itp(netlist)
        assert result.status is Status.PROVED, family
        assert result.engine == "itp"

    @pytest.mark.parametrize("family", list(BUGGY_FAMILIES))
    def test_agrees_with_bmc_on_buggy(self, family):
        netlist = BUGGY_FAMILIES[family]()
        reference = verify(netlist.clone()[0], method="bmc", max_depth=32)
        assert reference.status is Status.FAILED
        result = run_itp(netlist)
        assert result.status is Status.FAILED, family
        # Same minimal counterexample depth as BMC's breadth-first search
        # is not guaranteed (itp deepens geometrically), but the trace
        # must replay — EngineSpec.verify validated it already, so just
        # confirm it is present and ends in a violation.
        assert result.trace is not None
        assert result.trace.validate(netlist)

    def test_trace_depth_matches_bmc_on_exact_depth_bug(self):
        netlist = G.bug_at_depth(8)
        result = run_itp(netlist)
        assert result.status is Status.FAILED
        assert result.trace.depth == 8

    def test_unknown_when_depth_budget_too_small(self):
        # The bug sits at depth 9; a depth-2 budget must not mislabel.
        result = run_itp(G.bug_at_depth(9), max_depth=2)
        assert result.status is Status.UNKNOWN

    def test_depth0_violation(self):
        from repro.aig.graph import FALSE

        netlist = G.mod_counter(3, 7, safe=False)
        netlist.set_property(FALSE)  # every state is bad
        result = run_itp(netlist)
        assert result.status is Status.FAILED
        assert result.trace.depth == 0

    def test_dead_end_counterexample_under_constraints(self):
        # Regression: a violation whose bad state has no
        # constraint-satisfying successor.  Constraints asserted as unit
        # clauses on every unrolled frame would make the depth-3 path
        # unextendable (count==4 breaks the constraint) and the engine
        # would wrongly prove; the per-frame violation selectors keep
        # the suffix unconstrained.
        from repro.aig.graph import TRUE, edge_not
        from repro.circuits.generators import (
            _equals_constant, _incrementer,
        )
        from repro.circuits.netlist import Netlist

        netlist = Netlist("dead_end")
        bits = netlist.add_latches(3, prefix="c")
        for bit, nxt in zip(bits, _incrementer(netlist, bits, TRUE)):
            netlist.set_next(bit, nxt)
        netlist.add_constraint(
            edge_not(_equals_constant(netlist, bits, 4))
        )
        netlist.set_property(
            edge_not(_equals_constant(netlist, bits, 3))
        )
        netlist.validate()
        reference = verify(netlist.clone()[0], method="reach_bdd")
        assert reference.status is Status.FAILED
        result = run_itp(netlist)
        assert result.status is Status.FAILED
        assert result.trace.depth == 3

    def test_constraints_honored(self):
        # The canonical constraint scenario from test_constraints: the
        # buggy arbiter is safe under "at most one request per cycle".
        from test_constraints import constrained_buggy_arbiter

        result = run_itp(constrained_buggy_arbiter(3))
        assert result.status is Status.PROVED
        unconstrained = run_itp(G.arbiter(3, safe=False))
        assert unconstrained.status is Status.FAILED


class TestProofDiscipline:
    def test_proof_checker_smoke(self):
        # Every UNSAT solve of the reachability loop replays its proof
        # through the independent checker: all iterations check one
        # refutation each, except the spurious (SAT) restarts.
        for build in SAFE_FAMILIES.values():
            result = run_itp(build())
            assert result.status is Status.PROVED
            expected = result.iterations - result.stats.get(
                "spurious_hits", 0.0
            )
            assert result.stats.get("proofs_checked") == expected

    def test_interpolants_survive_differential_check(self):
        result = run_itp(
            G.mod_counter(3, 6), verify_interpolants=True
        )
        assert result.status is Status.PROVED
        assert result.stats.get("interpolants_verified") >= 1

    def test_differential_check_on_random_circuits(self):
        # Regression: the Tseitin constant variable's pin axiom lives in
        # whichever partition created it first; the differential check
        # must evaluate both sides under the pin or it rejects sound
        # interpolants (seed 7, among others, shared the constant var
        # across the split and crashed before the fix).
        from test_cross_engine_random import random_netlist

        for seed in (7, 13, 17, 30):
            netlist = random_netlist(seed)
            result = run_itp(
                netlist, max_depth=16, verify_interpolants=True
            )
            reference = verify(
                netlist.clone()[0], method="reach_bdd", max_depth=64
            )
            if result.status.is_conclusive:
                assert result.status is reference.status, seed

    def test_spurious_hits_force_deepening(self):
        result = run_itp(G.bug_at_depth(6))
        assert result.status is Status.FAILED
        # Reaching depth 6 from the initial k=1 requires spurious
        # restarts (or direct deepening); the engine must record them.
        assert result.stats.get("itp_depth") >= 6

    def test_deep_counter_proved_without_bdds(self):
        # Acceptance: a >= 64-bit counter proved by interpolation alone;
        # the final UNSAT call's resolution proof passed the independent
        # checker (check_proofs defaults to True).
        result = run_itp(G.mod_counter(64))
        assert result.status is Status.PROVED
        expected = result.iterations - result.stats.get(
            "spurious_hits", 0.0
        )
        assert result.stats.get("proofs_checked") == expected
        assert result.stats.get("proofs_checked") >= 1


class TestIntegration:
    def test_engine_registered_with_capabilities(self):
        assert "itp" in engine_names()
        spec = get_engine("itp")
        assert spec.complete
        assert spec.produces_trace
        assert spec.supports_constraints
        assert not spec.composite
        assert spec.options_class is ItpOptions
        assert spec.depth_field == "max_depth"

    def test_in_default_portfolio_candidates(self):
        from repro.portfolio.policy import default_engines, select_plan

        assert "itp" in default_engines()
        plan = select_plan(G.mod_counter(3, 6), policy="predict")
        assert "itp" in plan.methods

    def test_verify_front_door(self):
        result = verify(G.mod_counter(3, 6), method="itp", max_depth=16)
        assert result.proved

    def test_session_runs_itp_task(self):
        session = Session()
        result = session.run(
            VerificationTask(
                G.mod_counter(3, 6), engine="itp", max_depth=16
            )
        )
        assert result.proved
        assert result.engine == "itp"

    def test_stats_surface_the_loop(self):
        result = run_itp(G.mod_counter(4, 12))
        for key in ("sat_calls", "itp_depth", "proof_nodes",
                    "interpolant_nodes"):
            assert key in result.stats, key
