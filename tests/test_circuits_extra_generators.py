"""Tests for the johnson / up-down / one-hot generator families."""

import pytest

from repro.circuits.generators import (
    FAMILIES,
    johnson_counter,
    multiplier_miter,
    one_hot_fsm,
    up_down_counter,
)
from repro.errors import NetlistError
from repro.mc.engine import verify
from repro.mc.result import Status

CASES = [
    (lambda: johnson_counter(4, safe=True), Status.PROVED),
    (lambda: johnson_counter(4, safe=False), Status.FAILED),
    (lambda: up_down_counter(3, safe=True), Status.PROVED),
    (lambda: up_down_counter(3, safe=False), Status.FAILED),
    (lambda: one_hot_fsm(4, safe=True), Status.PROVED),
    (lambda: one_hot_fsm(4, safe=False), Status.FAILED),
]


class TestVerdicts:
    @pytest.mark.parametrize("build,expected", CASES)
    def test_aig_and_bdd_engines_agree(self, build, expected):
        for engine in ("reach_aig", "reach_bdd"):
            result = verify(build(), method=engine)
            assert result.status is expected, engine
            if expected is Status.FAILED:
                assert result.trace.validate(build())

    @pytest.mark.parametrize("build,expected", CASES)
    def test_forward_engine_agrees(self, build, expected):
        result = verify(build(), method="reach_aig_fwd")
        assert result.status is expected


class TestJohnson:
    def test_cycle_length(self):
        netlist = johnson_counter(4)
        state = netlist.init_assignment()
        seen = []
        for _ in range(8):
            seen.append(tuple(state[n] for n in netlist.latch_nodes))
            state = netlist.simulate_step(state, {})
        # A width-4 Johnson counter has period 8 and visits 8 codes.
        assert len(set(seen)) == 8
        assert tuple(state[n] for n in netlist.latch_nodes) == seen[0]

    def test_min_width_rejected(self):
        with pytest.raises(NetlistError):
            johnson_counter(1)


class TestUpDown:
    def step(self, netlist, state, up, enable=True):
        inputs = {
            netlist.input_nodes[0]: up,
            netlist.input_nodes[1]: enable,
        }
        return netlist.simulate_step(state, inputs)

    def value(self, netlist, state):
        return sum(
            int(state[n]) << k
            for k, n in enumerate(netlist.latch_nodes[:-1])  # skip shadow
        )

    def test_counts_up_and_saturates(self):
        netlist = up_down_counter(3)
        state = netlist.init_assignment()
        for _ in range(10):
            state = self.step(netlist, state, up=True)
        assert self.value(netlist, state) == 7  # saturated at the top

    def test_counts_down_and_saturates(self):
        netlist = up_down_counter(3)
        state = netlist.init_assignment()
        state = self.step(netlist, state, up=True)
        state = self.step(netlist, state, up=False)
        assert self.value(netlist, state) == 0
        state = self.step(netlist, state, up=False)
        assert self.value(netlist, state) == 0  # saturated at the bottom

    def test_disabled_holds_value(self):
        netlist = up_down_counter(3)
        state = netlist.init_assignment()
        state = self.step(netlist, state, up=True)
        held = self.step(netlist, state, up=True, enable=False)
        assert self.value(netlist, held) == self.value(netlist, state)

    def test_buggy_variant_wraps(self):
        netlist = up_down_counter(3, safe=False)
        state = netlist.init_assignment()
        for _ in range(8):
            state = self.step(netlist, state, up=True)
        assert self.value(netlist, state) == 0  # wrapped past the top


class TestOneHot:
    def test_advance_rotates(self):
        netlist = one_hot_fsm(4)
        state = netlist.init_assignment()
        advance, glitch = netlist.input_nodes
        state = netlist.simulate_step(
            state, {advance: True, glitch: False}
        )
        bits = [state[n] for n in netlist.latch_nodes]
        assert bits == [False, True, False, False]

    def test_hold_without_advance(self):
        netlist = one_hot_fsm(4)
        state = netlist.init_assignment()
        advance, glitch = netlist.input_nodes
        held = netlist.simulate_step(
            state, {advance: False, glitch: True}
        )
        assert held == state

    def test_buggy_glitch_double_sets(self):
        netlist = one_hot_fsm(4, safe=False)
        state = netlist.init_assignment()
        advance, glitch = netlist.input_nodes
        state = netlist.simulate_step(
            state, {advance: False, glitch: True}
        )
        bits = [state[n] for n in netlist.latch_nodes]
        assert sum(bits) == 2  # state 0 kept AND state 1 set


class TestMultiplierMiter:
    def test_both_multipliers_compute_integer_products(self):
        # Width 2 exhaustively: every output bit of the array side (the
        # miter's outputs) matches integer multiplication, and the safe
        # property holds on every input.
        from repro.aig.simulate import eval_edge

        netlist = multiplier_miter(2)
        outs = netlist.outputs
        for bits in range(16):
            assignment = {
                node: bool(bits >> k & 1)
                for k, node in enumerate(netlist.input_nodes)
            }
            a = (bits & 1) | (bits >> 1 & 1) << 1
            b = (bits >> 2 & 1) | (bits >> 3 & 1) << 1
            product = sum(
                eval_edge(netlist.aig, outs[f"p{k}"], assignment) << k
                for k in range(4)
            )
            assert product == a * b
            assert eval_edge(
                netlist.aig, netlist.property_edge, assignment
            )

    def test_buggy_variant_fails_on_a_quarter_of_inputs(self):
        from repro.aig.simulate import eval_edge

        netlist = multiplier_miter(2, safe=False)
        failures = sum(
            not eval_edge(
                netlist.aig,
                netlist.property_edge,
                {
                    node: bool(bits >> k & 1)
                    for k, node in enumerate(netlist.input_nodes)
                },
            )
            for bits in range(16)
        )
        assert failures == 4  # exactly when both operand MSBs are 1

    def test_verdicts_across_engines(self):
        for engine in ("bmc", "cnc"):
            result = verify(
                multiplier_miter(2, safe=False), method=engine,
                max_depth=0, workers=0,
            ) if engine == "cnc" else verify(
                multiplier_miter(2, safe=False), method=engine,
                max_depth=0,
            )
            assert result.status is Status.FAILED, engine
            assert result.trace.validate(multiplier_miter(2, safe=False))

    def test_family_registered(self):
        assert "multiplier_miter" in FAMILIES
        assert multiplier_miter(3).name == "mul_miter_3"
        assert multiplier_miter(3, safe=False).name == "mul_miter_3_buggy"

    def test_min_width_rejected(self):
        with pytest.raises(NetlistError):
            multiplier_miter(1)
