"""Tests for the AIG <-> BDD bridges."""

import pytest

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import xor
from repro.aig.simulate import truth_table
from repro.bdd.from_aig import aig_to_bdd, bdd_to_aig
from repro.bdd.manager import BDD_FALSE, BDD_TRUE, BddManager
from repro.errors import BddError, BddLimitExceeded
from tests.conftest import build_random_aig


def setup_manager(aig, inputs):
    manager = BddManager()
    var_map = {}
    for index, edge in enumerate(inputs):
        manager.new_var()
        var_map[edge >> 1] = index
    return manager, var_map


class TestAigToBdd:
    def test_random_roundtrip(self):
        for seed in range(8):
            aig, inputs, root = build_random_aig(4, 20, seed=seed)
            manager, var_map = setup_manager(aig, inputs)
            bdd = aig_to_bdd(aig, root, manager, var_map)
            back = bdd_to_aig(
                manager, bdd, aig, {i: e for i, e in enumerate(inputs)}
            )
            nodes = [e >> 1 for e in inputs]
            assert truth_table(aig, back, nodes) == truth_table(
                aig, root, nodes
            )

    def test_constants(self):
        aig = Aig()
        manager = BddManager()
        assert aig_to_bdd(aig, TRUE, manager, {}) == BDD_TRUE
        assert aig_to_bdd(aig, FALSE, manager, {}) == BDD_FALSE

    def test_complement_edge(self):
        aig = Aig()
        a = aig.add_input()
        manager, var_map = setup_manager(aig, [a])
        bdd_pos = aig_to_bdd(aig, a, manager, var_map)
        bdd_neg = aig_to_bdd(aig, edge_not(a), manager, var_map)
        assert bdd_neg == manager.not_(bdd_pos)

    def test_missing_var_map_entry_rejected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        manager = BddManager()
        manager.new_var()
        with pytest.raises(BddError):
            aig_to_bdd(aig, f, manager, {a >> 1: 0})

    def test_shared_cache_across_edges(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = edge_not(f)
        manager, var_map = setup_manager(aig, [a, b])
        cache = {}
        bdd_f = aig_to_bdd(aig, f, manager, var_map, cache)
        bdd_g = aig_to_bdd(aig, g, manager, var_map, cache)
        assert bdd_g == manager.not_(bdd_f)
        assert (f >> 1) in cache

    def test_node_limit_propagates(self):
        aig = Aig()
        xs = aig.add_inputs(8)
        acc = FALSE
        for x in xs:
            acc = xor(aig, acc, x)
        manager = BddManager(max_nodes=6)
        var_map = {}
        for index, edge in enumerate(xs):
            # new_var itself may hit the budget on tiny limits.
            try:
                manager.new_var()
            except BddLimitExceeded:
                pytest.skip("budget exhausted during setup")
            var_map[edge >> 1] = index
        with pytest.raises(BddLimitExceeded):
            aig_to_bdd(aig, acc, manager, var_map)


class TestBddToAig:
    def test_mux_structure(self):
        manager = BddManager()
        x, y = manager.new_var(), manager.new_var()
        f = manager.and_(x, manager.not_(y))
        aig = Aig()
        a, b = aig.add_inputs(2)
        edge = bdd_to_aig(manager, f, aig, {0: a, 1: b})
        assert truth_table(aig, edge, [a >> 1, b >> 1]) == 0b0010

    def test_terminals(self):
        manager = BddManager()
        aig = Aig()
        assert bdd_to_aig(manager, BDD_TRUE, aig, {}) == TRUE
        assert bdd_to_aig(manager, BDD_FALSE, aig, {}) == FALSE

    def test_missing_var_edge_rejected(self):
        manager = BddManager()
        x = manager.new_var()
        aig = Aig()
        with pytest.raises(BddError):
            bdd_to_aig(manager, x, aig, {})

    def test_quantify_via_bdd_matches_aig_semantics(self):
        # exists x . f computed in BDD land, converted back, spot-checked.
        aig, inputs, root = build_random_aig(4, 18, seed=77)
        manager, var_map = setup_manager(aig, inputs)
        bdd = aig_to_bdd(aig, root, manager, var_map)
        quantified = manager.exists(bdd, [0])
        back = bdd_to_aig(
            manager, quantified, aig, {i: e for i, e in enumerate(inputs)}
        )
        nodes = [e >> 1 for e in inputs]
        from repro.aig.ops import cofactor, or_

        reference = or_(
            aig,
            cofactor(aig, root, nodes[0], False),
            cofactor(aig, root, nodes[0], True),
        )
        assert truth_table(aig, back, nodes) == truth_table(
            aig, reference, nodes
        )
