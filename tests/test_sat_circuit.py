"""Tests for the circuit-SAT solver (justification-frontier search).

The circuit solver is the paper's "we plan to experiment with circuit-SAT"
direction.  Correctness is cross-checked against the CDCL solver through
the Tseitin encoding, against BDD oracles, and by evaluating every model
the solver returns.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import and_all, ite, or_, xor
from repro.aig.simulate import eval_edge
from repro.errors import SatError
from repro.sat.circuit import (
    CircuitSolver,
    enumerate_satisfying_assignments,
    prove_edges_equivalent_circuit,
    solve_edge,
)
from repro.sat.solver import Solver, SolveResult
from repro.sweep.satsweep import prove_edges_equivalent
from tests.conftest import build_random_aig, edges_equivalent


def cdcl_says_sat(aig, edge, value=True):
    """Oracle: CNF-based satisfiability of ``edge == value``."""
    mapper = CnfMapper(aig, Solver())
    lit = mapper.lit_for(edge if value else edge_not(edge))
    return mapper.solver.solve([lit]) is SolveResult.SAT


class TestBasics:
    def test_single_and_sat(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        solver = CircuitSolver(aig)
        assert solver.solve([(f, True)]) is SolveResult.SAT
        model = solver.model_inputs()
        assert model[a >> 1] and model[b >> 1]

    def test_single_and_blocked(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        solver = CircuitSolver(aig)
        assert solver.solve([(f, True), (a, False)]) is SolveResult.UNSAT

    def test_constant_objectives(self):
        aig = Aig()
        solver = CircuitSolver(aig)
        assert solver.solve([(TRUE, True)]) is SolveResult.SAT
        assert solver.solve([(TRUE, False)]) is SolveResult.UNSAT
        assert solver.solve([(FALSE, False)]) is SolveResult.SAT
        assert solver.solve([(FALSE, True)]) is SolveResult.UNSAT

    def test_contradictory_objectives(self):
        aig = Aig()
        a = aig.add_input()
        solver = CircuitSolver(aig)
        assert solver.solve([(a, True), (a, False)]) is SolveResult.UNSAT

    def test_complementary_edges_conflict(self):
        aig = Aig()
        a = aig.add_input()
        solver = CircuitSolver(aig)
        result = solver.solve([(a, True), (edge_not(a), True)])
        assert result is SolveResult.UNSAT

    def test_objective_on_negated_edge(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        solver = CircuitSolver(aig)
        assert solver.solve([(edge_not(f), True)]) is SolveResult.SAT
        model = solver.model_inputs()
        assert not eval_edge(aig, f, model)

    def test_xor_needs_differing_inputs(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = xor(aig, a, b)
        solver = CircuitSolver(aig)
        assert solver.solve([(f, True)]) is SolveResult.SAT
        model = solver.model_inputs()
        assert model[a >> 1] != model[b >> 1]

    def test_model_unavailable_after_unsat(self):
        aig = Aig()
        a = aig.add_input()
        solver = CircuitSolver(aig)
        solver.solve([(a, True), (a, False)])
        with pytest.raises(SatError):
            solver.model_inputs()

    def test_unsat_conjunction_of_xors(self):
        # a^b, b^c, a^c cannot all be 1 (parity argument).
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = and_all(
            aig, [xor(aig, a, b), xor(aig, b, c), xor(aig, a, c)]
        )
        solver = CircuitSolver(aig)
        assert solver.solve([(f, True)]) is SolveResult.UNSAT

    def test_solver_reusable_across_calls(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        solver = CircuitSolver(aig)
        assert solver.solve([(f, True)]) is SolveResult.SAT
        # Grow the AIG between calls; fanout index must extend.
        g = or_(aig, f, aig.add_input())
        assert solver.solve([(g, False)]) is SolveResult.SAT
        assert solver.solve([(f, True), (g, False)]) is SolveResult.UNSAT


class TestBudget:
    def test_zero_budget_reports_unknown_on_hard_instance(self):
        aig = Aig()
        inputs = aig.add_inputs(6)
        # Parity chain: forces deep search for a justification engine.
        f = inputs[0]
        for x in inputs[1:]:
            f = xor(aig, f, x)
        solver = CircuitSolver(aig, conflict_budget=1)
        result = solver.solve([(f, True), (edge_not(f), True)])
        assert result in (SolveResult.UNSAT, SolveResult.UNKNOWN)

    def test_per_call_budget_overrides_default(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        solver = CircuitSolver(aig, conflict_budget=0)
        # Easy instance needs no conflicts at all, so budget never binds.
        assert solver.solve([(f, True)], conflict_budget=10) is SolveResult.SAT


class TestAgainstCdcl:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_aigs_agree_with_cnf_solver(self, seed):
        aig, _, root = build_random_aig(
            num_inputs=5, num_gates=25, seed=seed
        )
        solver = CircuitSolver(aig)
        for value in (True, False):
            got = solver.solve([(root, value)])
            expected = cdcl_says_sat(aig, root, value)
            assert (got is SolveResult.SAT) == expected
            if got is SolveResult.SAT:
                model = solver.model_inputs()
                assert eval_edge(aig, root, model) == value

    @pytest.mark.parametrize("seed", range(15))
    def test_two_edge_objectives_agree(self, seed):
        rng = random.Random(seed)
        aig, _, root_a = build_random_aig(
            num_inputs=4, num_gates=18, seed=seed
        )
        cone = [2 * n for n in aig.cone([root_a]) if aig.is_and(n)]
        root_b = rng.choice(cone) ^ rng.randint(0, 1) if cone else root_a
        solver = CircuitSolver(aig)
        got = solver.solve([(root_a, True), (root_b, False)])
        want = cdcl_says_sat(
            aig, aig.and_(root_a, edge_not(root_b)), True
        )
        assert (got is SolveResult.SAT) == want
        if got is SolveResult.SAT:
            model = solver.model_inputs()
            assert eval_edge(aig, root_a, model)
            assert not eval_edge(aig, root_b, model)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_random_aig_sat_agreement(self, seed):
        aig, _, root = build_random_aig(
            num_inputs=4, num_gates=15, seed=seed
        )
        result, model = solve_edge(aig, root, True)
        assert (result is SolveResult.SAT) == cdcl_says_sat(aig, root, True)
        if model is not None:
            assert eval_edge(aig, root, model)


class TestEquivalence:
    def test_structurally_equal(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        solver = CircuitSolver(aig)
        assert solver.check_equal(f, f) is True
        assert solver.check_equal(f, edge_not(f)) is False

    def test_semantically_equal_different_structure(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        lhs = aig.and_(a, aig.and_(b, c))
        rhs = aig.and_(aig.and_(a, b), c)
        solver = CircuitSolver(aig)
        assert solver.check_equal(lhs, rhs) is True

    def test_demorgan_equivalence(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        lhs = edge_not(aig.and_(a, b))
        rhs = or_(aig, edge_not(a), edge_not(b))
        solver = CircuitSolver(aig)
        assert solver.check_equal(lhs, rhs) is True

    def test_inequivalent_reports_false(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        solver = CircuitSolver(aig)
        assert solver.check_equal(aig.and_(a, b), or_(aig, a, b)) is False

    def test_check_constant(self):
        aig = Aig()
        a = aig.add_input()
        tautology = or_(aig, a, edge_not(a))
        solver = CircuitSolver(aig)
        assert solver.check_constant(tautology, True) is True
        assert solver.check_constant(tautology, False) is False
        assert solver.check_constant(a, True) is False

    @pytest.mark.parametrize("seed", range(20))
    def test_prove_equivalent_matches_cnf_version(self, seed):
        rng = random.Random(1000 + seed)
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=16, seed=seed
        )
        cone = [2 * n for n in aig.cone([root]) if aig.is_and(n)]
        other = rng.choice(cone) ^ rng.randint(0, 1) if cone else root
        circuit_verdict, circuit_cex = prove_edges_equivalent_circuit(
            aig, root, other
        )
        cnf_verdict, _ = prove_edges_equivalent(aig, root, other)
        assert circuit_verdict == cnf_verdict
        assert circuit_verdict == edges_equivalent(
            aig, root, other, [e >> 1 for e in inputs]
        )
        if circuit_verdict is False:
            assert eval_edge(aig, root, circuit_cex) != eval_edge(
                aig, other, circuit_cex
            )

    def test_prove_complement_pair(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        verdict, cex = prove_edges_equivalent_circuit(aig, f, edge_not(f))
        assert verdict is False
        assert cex is not None


class TestEnumeration:
    def test_all_models_of_or(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = or_(aig, a, b)
        models = enumerate_satisfying_assignments(aig, f, [a >> 1, b >> 1])
        assert len(models) == 3
        for model in models:
            assert eval_edge(aig, f, model)

    def test_limit_respected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = or_(aig, a, b)
        assert len(enumerate_satisfying_assignments(aig, f, [a >> 1, b >> 1], limit=2)) == 2

    def test_too_many_inputs_rejected(self):
        aig = Aig()
        inputs = aig.add_inputs(21)
        with pytest.raises(SatError):
            enumerate_satisfying_assignments(aig, inputs[0], [e >> 1 for e in inputs])

    def test_ite_model_count(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = ite(aig, a, b, c)
        models = enumerate_satisfying_assignments(aig, f, [a >> 1, b >> 1, c >> 1])
        # ite truth table has 4 ones over 3 inputs.
        assert len(models) == 4


class TestStats:
    def test_solver_counts_calls_and_decisions(self):
        aig = Aig()
        inputs = aig.add_inputs(4)
        f = inputs[0]
        for x in inputs[1:]:
            f = xor(aig, f, x)
        solver = CircuitSolver(aig)
        solver.solve([(f, True)])
        assert solver.stats.get("solve_calls") == 1
        solver.check_equal(f, inputs[0])
        assert solver.stats.get("equal_checks") == 1
