"""Differential pins for the flat-array hot-loop kernels.

The array-backed CDCL propagation loop, the int-keyed BDD node table and
the levelized simulation plans are pure re-layouts: they must reproduce
the reference trajectories *bit for bit*, not merely the same verdicts.
These tests pin that contract three ways:

* **Self-differential determinism** (hypothesis): two independently
  constructed instances replaying the same random workload must agree on
  every scalar counter, every ProofLog node and every unique-table entry
  — any hidden iteration-order or id-assignment dependence shows up as a
  counter drift here.
* **Golden trajectory pins**: seeded workloads with their conflict /
  propagation / restart counts and BDD node / cache-hit counts recorded
  in-tree.  A future "optimisation" that silently re-rolls the search
  (different clause visit order, different cache keying) fails these
  even if it stays correct.
* **Plan-vs-direct equivalence** (hypothesis): the levelized cone-plan
  evaluator against a naive per-node dict walk on random AIGs.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import Aig
from repro.aig.ops import support, support_many
from repro.aig.simulate import cone_plan, simulate, simulate_nodes
from repro.bdd.manager import BddManager
from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolveResult


def _random_cnf(rng, max_vars=8, max_clauses=40):
    n = rng.randint(1, max_vars)
    m = rng.randint(1, max_clauses)
    f = CNF(n)
    for _ in range(m):
        width = min(rng.randint(1, 3), n)
        variables = rng.sample(range(1, n + 1), width)
        f.add_clause(rng.choice([v, -v]) for v in variables)
    return f


def _solver_fingerprint(solver):
    fp = {
        "conflicts": solver.conflicts,
        "decisions": solver.decisions,
        "propagations": solver.propagations,
        "restarts": solver.restarts,
        "learned_clauses": solver.learned_clauses,
    }
    proof = solver.proof
    if proof is not None:
        fp["proof_literals"] = tuple(proof.literals)
        fp["proof_chains"] = tuple(proof.chains)
        fp["proof_root"] = proof.root
        fp["proof_final"] = proof.final
    return fp


@st.composite
def _cnf_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    clause = st.lists(
        st.integers(min_value=1, max_value=n).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    )
    clauses = draw(st.lists(clause, max_size=25))
    f = CNF(n)
    for c in clauses:
        f.add_clause(c)
    return f


class TestSolverDifferential:
    @settings(max_examples=60, deadline=None)
    @given(_cnf_strategy())
    def test_two_array_solvers_share_one_trajectory(self, f):
        """Fresh solvers on the same CNF: identical counters and proofs.

        The arena layout (clause base offsets, watch-vector order) is a
        function of ``add_clause`` order alone, so two builds of the
        same formula must propagate, conflict, restart and log the exact
        same resolution steps.
        """
        a = Solver(f, proof=True)
        b = Solver(f, proof=True)
        ra = a.solve()
        rb = b.solve()
        assert ra is rb
        assert _solver_fingerprint(a) == _solver_fingerprint(b)

    @settings(max_examples=30, deadline=None)
    @given(
        _cnf_strategy(),
        st.lists(st.integers(min_value=1, max_value=7), max_size=3),
    )
    def test_assumption_cores_are_deterministic(self, f, assume_vars):
        assumptions = [v if v % 2 else -v for v in assume_vars]
        a = Solver(f, proof=True)
        b = Solver(f, proof=True)
        ra = a.solve(assumptions)
        rb = b.solve(assumptions)
        assert ra is rb
        if ra is SolveResult.UNSAT:
            assert a.core == b.core
        assert _solver_fingerprint(a) == _solver_fingerprint(b)

    def test_golden_trajectory_counts(self):
        """Seeded workloads pinned to their recorded trajectories.

        These numbers were recorded from the flat-array solver; any
        change to clause arena order, watch scanning order or conflict
        analysis that re-rolls the search shows up here immediately.
        Update the goldens only for a *deliberate* trajectory change.
        """
        golden = []
        rng = random.Random(2026)
        for _ in range(6):
            # Phase-transition 3-SAT (m ~= 4.3 n): hard enough to force
            # real conflict analysis, restarts and clause learning.
            n = 30
            f = CNF(n)
            for _ in range(129):
                variables = rng.sample(range(1, n + 1), 3)
                f.add_clause(rng.choice([v, -v]) for v in variables)
            s = Solver(f, proof=True)
            verdict = s.solve()
            proof_len = len(s.proof) if s.proof is not None else 0
            golden.append(
                (
                    verdict is SolveResult.SAT,
                    s.conflicts,
                    s.propagations,
                    s.restarts,
                    s.learned_clauses,
                    proof_len,
                )
            )
        assert golden == [
            (False, 19, 186, 0, 15, 162),
            (True, 3, 51, 0, 3, 132),
            (True, 13, 130, 0, 12, 142),
            (True, 16, 190, 0, 16, 145),
            (False, 20, 178, 0, 16, 154),
            (True, 18, 199, 0, 18, 147),
        ]


def _replay_bdd_ops(ops):
    """Apply a random op sequence to a fresh manager; return manager
    and the pool of produced nodes."""
    mgr = BddManager()
    xs = [mgr.new_var() for _ in range(4)]
    pool = list(xs)
    for op, i, j in ops:
        a = pool[i % len(pool)]
        b = pool[j % len(pool)]
        if op == "and":
            pool.append(mgr.and_(a, b))
        elif op == "or":
            pool.append(mgr.or_(a, b))
        elif op == "xor":
            pool.append(mgr.xor(a, b))
        elif op == "not":
            pool.append(mgr.not_(a))
        elif op == "ite":
            pool.append(mgr.ite(a, b, pool[(i + j) % len(pool)]))
        elif op == "exists":
            pool.append(mgr.exists(a, [j % 4]))
        else:
            pool.append(mgr.and_exists(a, b, [i % 4]))
    return mgr, pool


_BDD_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["and", "or", "xor", "not", "ite", "exists", "and_exists"]
        ),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=20,
)


class TestBddDifferential:
    @settings(max_examples=50, deadline=None)
    @given(ops=_BDD_OPS)
    def test_two_managers_share_one_table(self, ops):
        """Same op sequence, two managers: identical node ids, node
        counts and per-operation cache hit/miss/entry/reset stats.

        The packed-int unique-table and cache keys must be a pure
        function of the op sequence — any dependence on dict iteration
        order or id recycling would desynchronise the two replays.
        """
        mgr_a, pool_a = _replay_bdd_ops(ops)
        mgr_b, pool_b = _replay_bdd_ops(ops)
        assert pool_a == pool_b
        assert mgr_a.num_nodes == mgr_b.num_nodes
        assert mgr_a.cache_stats() == mgr_b.cache_stats()
        assert mgr_a.cache_summary() == mgr_b.cache_summary()

    def test_golden_node_and_cache_counts(self):
        """Seeded apply/quantify sequence pinned to its recorded table.

        Node count pins the unique-table trajectory (reduction rules,
        allocation order); cache hits/misses pin the memoisation keys.
        Update only for a deliberate kernel change.
        """
        rng = random.Random(7)
        ops = [
            (
                rng.choice(
                    ["and", "or", "xor", "not", "ite", "exists",
                     "and_exists"]
                ),
                rng.randrange(10),
                rng.randrange(10),
            )
            for _ in range(40)
        ]
        mgr, _pool = _replay_bdd_ops(ops)
        summary = mgr.cache_summary()
        assert mgr.num_nodes == 32
        assert summary["cache_hits"] == 13
        assert summary["cache_misses"] == 34
        assert summary["cache_entries"] == 40


def _random_aig(rng, n_inputs=5, n_ands=25):
    aig = Aig()
    input_edges = [aig.add_input() for _ in range(n_inputs)]
    inputs = [edge >> 1 for edge in input_edges]
    edges = list(input_edges) + [0]
    for _ in range(n_ands):
        f0 = rng.choice(edges) ^ rng.randint(0, 1)
        f1 = rng.choice(edges) ^ rng.randint(0, 1)
        edges.append(aig.and_(f0, f1))
    return aig, inputs, edges


def _naive_simulate(aig, input_vectors, targets, words):
    """Reference per-node dict walk (the pre-plan implementation)."""
    values = {0: np.zeros(words, dtype=np.uint64)}
    ones = ~np.zeros(words, dtype=np.uint64)
    for node in aig.cone(targets):
        if aig.is_input(node):
            values[node] = np.asarray(
                input_vectors.get(node, values[0]), dtype=np.uint64
            )
            continue
        f0, f1 = aig.fanins(node)
        a = values[f0 >> 1]
        if f0 & 1:
            a = a ^ ones
        b = values[f1 >> 1]
        if f1 & 1:
            b = b ^ ones
        values[node] = a & b
    out = {}
    for edge in targets:
        v = values.get(edge >> 1, values[0])
        out[edge] = v ^ ones if edge & 1 else v
    return out


class TestSimulationDifferential:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           words=st.integers(min_value=1, max_value=3))
    def test_plan_matches_naive_walk(self, seed, words):
        rng = random.Random(seed)
        aig, inputs, edges = _random_aig(rng)
        vectors = {
            node: np.array(
                [rng.getrandbits(64) for _ in range(words)],
                dtype=np.uint64,
            )
            for node in inputs
        }
        targets = rng.sample(edges, min(4, len(edges)))
        got = simulate(aig, vectors, targets)
        want = _naive_simulate(aig, vectors, targets, words)
        assert set(got) == set(want)
        for edge in targets:
            assert np.array_equal(got[edge], want[edge]), edge

    def test_simulate_nodes_covers_whole_cone(self):
        rng = random.Random(3)
        aig, inputs, edges = _random_aig(rng)
        target = edges[-1]
        vectors = {
            node: np.array([rng.getrandbits(64)], dtype=np.uint64)
            for node in inputs
        }
        by_node = simulate_nodes(aig, vectors, [target])
        plan = cone_plan(aig, (target,))
        assert set(by_node) == set(plan.pos)
        assert not by_node[0].any()

    def test_support_matches_cone_walk(self):
        rng = random.Random(9)
        aig, _inputs, edges = _random_aig(rng)
        for edge in rng.sample(edges, 8):
            direct = {
                node for node in aig.cone([edge]) if aig.is_input(node)
            }
            assert support(aig, edge) == direct
        sample = rng.sample(edges, 5)
        direct_many = {
            node for node in aig.cone(sample) if aig.is_input(node)
        }
        assert support_many(aig, sample) == direct_many

    def test_plans_are_cached_and_bounded(self):
        rng = random.Random(1)
        aig, inputs, edges = _random_aig(rng)
        target = edges[-1]
        plan_a = cone_plan(aig, (target,))
        plan_b = cone_plan(aig, (target,))
        assert plan_a is plan_b
        # The complement edge shares the cone, hence the plan.
        assert cone_plan(aig, (target ^ 1,)) is plan_a
