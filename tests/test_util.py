"""Tests for the util substrate (stats containers, stopwatch)."""

import pytest

from repro.util.stats import Counter, StatsBag
from repro.util.timing import Stopwatch


class TestStatsBag:
    def test_incr_and_get(self):
        bag = StatsBag()
        bag.incr("checks")
        bag.incr("checks", 4)
        assert bag.get("checks") == 5
        assert bag.get("missing") == 0
        assert bag.get("missing", 7) == 7

    def test_set_overwrites(self):
        bag = StatsBag()
        bag.set("size", 10)
        bag.set("size", 3)
        assert bag.get("size") == 3

    def test_max_keeps_peak(self):
        bag = StatsBag()
        bag.max("peak", 5)
        bag.max("peak", 2)
        bag.max("peak", 9)
        assert bag.get("peak") == 9

    def test_contains_and_iter_sorted(self):
        bag = StatsBag()
        bag.set("b", 2)
        bag.set("a", 1)
        assert "a" in bag
        assert "z" not in bag
        assert [key for key, _ in bag] == ["a", "b"]

    def test_merge_adds(self):
        left = StatsBag()
        left.incr("x", 2)
        right = StatsBag()
        right.incr("x", 3)
        right.incr("y", 1)
        left.merge(right)
        assert left.get("x") == 5
        assert left.get("y") == 1

    def test_merge_keeps_gauge_peaks(self):
        # Regression: merging used to *add* peak_size-style gauges,
        # reporting peaks nobody ever saw.
        left = StatsBag()
        left.max("peak_size", 10)
        left.set("size_after", 7)
        right = StatsBag()
        right.max("peak_size", 6)
        right.set("size_after", 9)
        left.merge(right)
        assert left.get("peak_size") == 10
        assert left.get("size_after") == 9

    def test_merge_gauge_on_either_side_wins(self):
        # A key that is a gauge in one bag stays a gauge after merging.
        left = StatsBag()
        left.incr("depth", 3)
        right = StatsBag()
        right.set("depth", 2)
        left.merge(right)
        assert left.get("depth") == 3
        assert left.is_gauge("depth")

    def test_gauge_tracking(self):
        bag = StatsBag()
        bag.incr("checks")
        bag.set("size", 5)
        bag.max("peak", 7)
        assert not bag.is_gauge("checks")
        assert bag.is_gauge("size")
        assert bag.gauge_keys() == {"size", "peak"}

    def test_as_dict_copy(self):
        bag = StatsBag()
        bag.set("k", 1)
        snapshot = bag.as_dict()
        snapshot["k"] = 99
        assert bag.get("k") == 1

    def test_report_format(self):
        bag = StatsBag()
        bag.set("alpha", 3)
        assert "alpha" in bag.report()
        assert "3" in bag.report()

    def test_incr_reclassifies_gauge_as_counter(self):
        # Regression: incr on a key previously written with set/max used
        # to leave it a gauge silently, so merges took the maximum of
        # values the caller meant to sum.
        bag = StatsBag()
        bag.set("calls", 10)
        bag.incr("calls", 2)
        assert not bag.is_gauge("calls")
        other = StatsBag()
        other.incr("calls", 5)
        bag.merge(other)
        assert bag.get("calls") == 17  # summed, not max(12, 5)

    def test_incr_after_max_reclassifies_too(self):
        bag = StatsBag()
        bag.max("hits", 4)
        bag.incr("hits")
        assert not bag.is_gauge("hits")
        assert bag.gauge_keys() == set()

    def test_set_after_incr_reclassifies_as_gauge(self):
        # Last write wins the classification in both directions.
        bag = StatsBag()
        bag.incr("depth", 3)
        bag.set("depth", 2)
        assert bag.is_gauge("depth")


class TestStatsBagSeries:
    def test_sample_and_series(self):
        bag = StatsBag()
        bag.sample("nodes", 10, t=0.5)
        bag.sample("nodes", 12, t=1.0)
        assert bag.series("nodes") == [(0.5, 10.0), (1.0, 12.0)]
        assert bag.series_keys() == {"nodes"}
        assert bag.series("missing") == []

    def test_sample_defaults_to_perf_counter(self):
        bag = StatsBag()
        bag.sample("nodes", 1)
        ((t, value),) = bag.series("nodes")
        assert t > 0.0
        assert value == 1.0

    def test_series_returns_copy(self):
        bag = StatsBag()
        bag.sample("nodes", 1, t=0.0)
        bag.series("nodes").append((9.0, 9.0))
        assert len(bag.series("nodes")) == 1

    def test_to_dict_round_trips_series(self):
        bag = StatsBag()
        bag.incr("calls", 3)
        bag.set("peak", 7)
        bag.sample("nodes", 10, t=0.5)
        restored = StatsBag.from_dict(bag.to_dict())
        assert restored.get("calls") == 3
        assert restored.is_gauge("peak")
        assert restored.series("nodes") == [(0.5, 10.0)]

    def test_to_dict_omits_empty_series(self):
        bag = StatsBag()
        bag.incr("calls")
        assert "series" not in bag.to_dict()

    def test_merge_concatenates_series_in_time_order(self):
        left = StatsBag()
        left.sample("nodes", 1, t=0.0)
        left.sample("nodes", 3, t=2.0)
        right = StatsBag()
        right.sample("nodes", 2, t=1.0)
        right.sample("queue", 5, t=0.5)
        left.merge(right)
        assert left.series("nodes") == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        assert left.series("queue") == [(0.5, 5.0)]


class TestCounter:
    def test_incr(self):
        counter = Counter("n")
        counter.incr()
        counter.incr(2)
        assert counter.value == 3
        assert counter.name == "n"


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first >= 0.0

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag_and_reset(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running
