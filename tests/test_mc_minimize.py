"""Tests for counterexample minimization (input don't-care analysis)."""

import pytest

from repro.circuits.generators import arbiter, bug_at_depth, mod_counter
from repro.errors import ModelCheckingError
from repro.mc.engine import verify
from repro.mc.minimize import minimize_trace
from repro.mc.result import Status, Trace
from tests.test_cross_engine_random import random_netlist


class TestMinimize:
    def test_counter_trace_has_no_inputs_to_minimize(self):
        result = verify(mod_counter(4, 12, safe=False), method="reach_aig")
        minimized = minimize_trace(
            mod_counter(4, 12, safe=False), result.trace
        )
        assert minimized.total_inputs == 0
        assert minimized.care_ratio == 0.0
        assert minimized.trace.depth == result.trace.depth

    def test_arbiter_collision_inputs_are_care(self):
        netlist = arbiter(3, safe=False)
        result = verify(netlist, method="reach_aig")
        assert result.status is Status.FAILED
        minimized = minimize_trace(arbiter(3, safe=False), result.trace)
        # The violation needs two simultaneous requests: at least two of
        # the violation-step inputs must be marked as caring.
        caring = sum(
            1 for matters in minimized.violation_care.values() if matters
        )
        assert caring >= 2
        assert minimized.trace.validate(arbiter(3, safe=False))

    def test_bug_at_depth_relaxation_stays_valid(self):
        netlist = bug_at_depth(5)
        result = verify(netlist, method="reach_aig")
        minimized = minimize_trace(bug_at_depth(5), result.trace)
        assert minimized.trace.validate(bug_at_depth(5))
        assert minimized.trace.depth == result.trace.depth

    @pytest.mark.parametrize("seed", [2, 5, 8, 13, 17])
    def test_random_traces_minimize_and_revalidate(self, seed):
        netlist = random_netlist(seed)
        result = verify(netlist, method="reach_aig")
        if result.status is not Status.FAILED:
            return
        minimized = minimize_trace(random_netlist(seed), result.trace)
        assert minimized.trace.validate(random_netlist(seed))
        assert 0.0 <= minimized.care_ratio <= 1.0
        # Care never exceeds the original input count.
        assert minimized.care_count <= minimized.total_inputs

    def test_invalid_trace_rejected(self):
        netlist = mod_counter(3, 6, safe=False)
        bogus = Trace(states=[netlist.init_assignment()], inputs=[])
        with pytest.raises(ModelCheckingError):
            minimize_trace(netlist, bogus)

    def test_constrained_minimization_respects_constraints(self):
        from repro.aig.graph import edge_not

        netlist = arbiter(3, safe=False)
        aig = netlist.aig
        r0, r1 = (2 * n for n in netlist.input_nodes[:2])
        netlist.add_constraint(edge_not(aig.and_(r0, r1)))
        result = verify(netlist, method="reach_aig")
        assert result.status is Status.FAILED

        def rebuild():
            fresh = arbiter(3, safe=False)
            fa = fresh.aig
            f0, f1 = (2 * n for n in fresh.input_nodes[:2])
            fresh.add_constraint(edge_not(fa.and_(f0, f1)))
            return fresh

        minimized = minimize_trace(rebuild(), result.trace)
        assert minimized.trace.validate(rebuild())
