"""The ``pdr`` engine: IC3/property-directed reachability.

Confidence comes in four layers: cross-engine agreement with the BDD
traversal, interpolation and BMC on the tier-1 circuit families; a
hypothesis property test asserting every PROVED result ships an
invariant certificate that is initial, inductive and bad-excluding when
re-checked on a fresh solver; unit tests of the frame trace, solver
pool and generalization machinery; and the acceptance cases — the
64/96/128-bit counter family and a constraint-carrying family proved
with certified invariants, replay-valid traces on every FAILED family.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Session, VerificationTask, engine_names, get_engine
from repro.circuits import generators as G
from repro.errors import CertificateError
from repro.mc import verify
from repro.mc.result import InvariantCertificate, Status, VerificationResult
from repro.pdr import PdrOptions, check_certificate
from repro.pdr.frames import (
    FrameTrace,
    cube_excludes_init,
    state_to_cube,
)
from repro.sat.solver import SolveResult, Solver
from test_cross_engine_random import random_netlist


SAFE_FAMILIES = {
    "mod_counter": lambda: G.mod_counter(4, 12),
    "ring_counter": lambda: G.ring_counter(5),
    "gray_counter": lambda: G.gray_counter(4),
    "fifo_level": lambda: G.fifo_level(3),
    "up_down": lambda: G.up_down_counter(4),
    "one_hot_fsm": lambda: G.one_hot_fsm(5),
    "arbiter": lambda: G.arbiter(4),
    "johnson": lambda: G.johnson_counter(5),
    "traffic_light": lambda: G.traffic_light(),
    "lfsr": lambda: G.lfsr(5),
}

BUGGY_FAMILIES = {
    "mod_counter": lambda: G.mod_counter(4, 12, safe=False),
    "ring_counter": lambda: G.ring_counter(5, safe=False),
    "fifo_level": lambda: G.fifo_level(3, safe=False),
    "one_hot_fsm": lambda: G.one_hot_fsm(5, safe=False),
    "up_down": lambda: G.up_down_counter(4, safe=False),
    "bug_at_depth": lambda: G.bug_at_depth(6),
}


def run_pdr(netlist, max_frames=40, **overrides):
    options = PdrOptions(max_frames=max_frames, **overrides)
    return verify(netlist, method="pdr", options=options)


def assert_certified(netlist, result):
    """The PROVED contract: a certificate that re-checks independently."""
    assert result.proved
    assert result.certificate is not None
    check_certificate(netlist, result.certificate)


class TestVerdicts:
    @pytest.mark.parametrize("family", list(SAFE_FAMILIES))
    def test_agrees_with_reach_bdd_and_itp_on_safe(self, family):
        netlist = SAFE_FAMILIES[family]()
        assert verify(netlist.clone()[0], method="reach_bdd").proved
        assert verify(netlist.clone()[0], method="itp", max_depth=32).proved
        result = run_pdr(netlist)
        assert result.status is Status.PROVED, family
        assert result.engine == "pdr"
        assert_certified(netlist, result)

    @pytest.mark.parametrize("family", list(BUGGY_FAMILIES))
    def test_agrees_with_bmc_on_buggy(self, family):
        netlist = BUGGY_FAMILIES[family]()
        reference = verify(netlist.clone()[0], method="bmc", max_depth=32)
        assert reference.status is Status.FAILED
        result = run_pdr(netlist)
        assert result.status is Status.FAILED, family
        assert result.certificate is None
        # EngineSpec.verify replay-validated the trace already; confirm
        # it is present, replays, and is no shorter than BMC's shortest.
        assert result.trace is not None
        assert result.trace.validate(netlist)
        assert result.trace.depth >= reference.trace.depth

    def test_exact_depth_bug_found_at_its_depth(self):
        result = run_pdr(G.bug_at_depth(8))
        assert result.status is Status.FAILED
        assert result.trace.depth == 8

    def test_unknown_when_frame_budget_too_small(self):
        # The bug sits at depth 9; a 3-frame trace must not mislabel.
        result = run_pdr(G.bug_at_depth(9), max_frames=3)
        assert result.status is Status.UNKNOWN
        assert result.certificate is None

    def test_depth0_violation(self):
        from repro.aig.graph import FALSE

        netlist = G.mod_counter(3, 7, safe=False)
        netlist.set_property(FALSE)  # every state is bad
        result = run_pdr(netlist)
        assert result.status is Status.FAILED
        assert result.trace.depth == 0

    def test_obligation_budget_yields_unknown(self):
        result = run_pdr(G.mod_counter(4, 12, safe=False),
                         max_obligations=1)
        assert result.status is Status.UNKNOWN

    def test_dead_end_counterexample_under_constraints(self):
        # A violation whose bad state has no constraint-satisfying
        # successor: constraints asserted on the successor frame of the
        # consecution query would excise the depth-3 path; PDR only
        # constrains the source frame.
        from repro.aig.graph import TRUE, edge_not
        from repro.circuits.generators import (
            _equals_constant, _incrementer,
        )
        from repro.circuits.netlist import Netlist

        netlist = Netlist("dead_end")
        bits = netlist.add_latches(3, prefix="c")
        for bit, nxt in zip(bits, _incrementer(netlist, bits, TRUE)):
            netlist.set_next(bit, nxt)
        netlist.add_constraint(
            edge_not(_equals_constant(netlist, bits, 4))
        )
        netlist.set_property(
            edge_not(_equals_constant(netlist, bits, 3))
        )
        netlist.validate()
        result = run_pdr(netlist)
        assert result.status is Status.FAILED
        assert result.trace.depth == 3

    def test_constraints_honored(self):
        # The canonical constraint scenario: the buggy arbiter is safe
        # under "at most one request per cycle" — a constraint-carrying
        # family PROVED with a certified invariant.
        from test_constraints import constrained_buggy_arbiter

        netlist = constrained_buggy_arbiter(3)
        result = run_pdr(netlist)
        assert_certified(netlist, result)
        unconstrained = run_pdr(G.arbiter(3, safe=False))
        assert unconstrained.status is Status.FAILED

    def test_constrained_sequential_family_proved(self):
        # Constraints that matter *sequentially*: a free-running counter
        # whose increment input is forbidden past the threshold, so the
        # overflow region stays unreachable only because of the
        # constraint.  The certificate must close under the constrained
        # transition relation.
        from repro.aig.graph import edge_not
        from repro.circuits.generators import _equals_constant
        from repro.circuits.netlist import Netlist
        from repro.circuits.generators import _incrementer

        netlist = Netlist("gated_counter")
        enable = netlist.add_input("en")
        bits = netlist.add_latches(3, prefix="c")
        for bit, nxt in zip(bits, _incrementer(netlist, bits, enable)):
            netlist.set_next(bit, nxt)
        at_cap = _equals_constant(netlist, bits, 5)
        netlist.add_constraint(
            edge_not(netlist.aig.and_(at_cap, enable))
        )
        netlist.set_property(
            edge_not(_equals_constant(netlist, bits, 6))
        )
        netlist.validate()
        assert verify(netlist.clone()[0], method="reach_bdd").proved
        result = run_pdr(netlist)
        assert_certified(netlist, result)
        assert result.certificate.num_clauses >= 1


class TestCertificates:
    def test_every_safe_family_ships_a_checked_certificate(self):
        for family, build in SAFE_FAMILIES.items():
            netlist = build()
            result = run_pdr(netlist)
            assert result.proved, family
            assert result.stats.get("certificates_checked") == 1, family
            # Re-check on this side of the API boundary too.
            check_certificate(netlist, result.certificate)

    def test_tampered_certificate_rejected(self):
        netlist = G.ring_counter(5)
        result = run_pdr(netlist)
        certificate = result.certificate
        assert certificate.num_clauses >= 1
        # Dropping a clause breaks consecution or safety; flipping a
        # literal breaks initiation or consecution.  Either way the
        # independent checker must refuse.
        clause = certificate.clauses[0]
        flipped = InvariantCertificate(
            clauses=[tuple(-lit for lit in clause)]
            + certificate.clauses[1:],
            level=certificate.level,
        )
        with pytest.raises(CertificateError):
            check_certificate(netlist, flipped)

    def test_foreign_literal_rejected(self):
        netlist = G.ring_counter(4)
        bogus = InvariantCertificate(clauses=[(99999,)])
        with pytest.raises(CertificateError):
            check_certificate(netlist, bogus)

    def test_certificate_survives_serialization(self):
        netlist = G.mod_counter(4, 12)
        result = run_pdr(netlist)
        # Node-keyed round trip.
        rebuilt = VerificationResult.from_dict(result.to_dict())
        assert rebuilt.certificate.clauses == result.certificate.clauses
        check_certificate(netlist, rebuilt.certificate)
        # Positional round trip re-anchored on a clone with different
        # node numbering — the portfolio cache's scenario.
        clone, _, _ = netlist.clone()
        positional = VerificationResult.from_dict(
            result.to_dict(netlist), clone
        )
        check_certificate(clone, positional.certificate)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_proved_results_always_certify_property(self, seed):
        # The satellite property: every PROVED pdr result on a random
        # circuit ships an invariant that is initial, inductive and
        # bad-excluding, re-derived here with fresh solvers (both via
        # the checker and via the explicit three queries below).
        netlist = random_netlist(seed)
        result = run_pdr(netlist, max_frames=60)
        reference = verify(
            random_netlist(seed).clone()[0], method="reach_bdd",
            max_depth=200,
        )
        assert result.status is reference.status, seed
        if not result.proved:
            return
        certificate = result.certificate
        check_certificate(netlist, certificate)
        # Initiation, by direct evaluation with a fresh Solver-backed
        # query per clause: the initial state satisfies every clause.
        init = netlist.init_assignment()
        for clause in certificate.clauses:
            assert any((lit > 0) == init[abs(lit)] for lit in clause)
        # Safety via an independent solver: invariant ∧ C ∧ ¬P UNSAT.
        from repro.aig.cnf import CnfMapper
        from repro.aig.graph import edge_not
        from repro.pdr import invariant_edge

        aig = netlist.aig
        inv = invariant_edge(netlist, certificate)
        mapper = CnfMapper(aig, Solver())
        bad = aig.and_(
            inv,
            aig.and_(netlist.constraint_edge(),
                     edge_not(netlist.property_edge)),
        )
        assert mapper.solver.solve(
            [mapper.lit_for(bad)]
        ) is not SolveResult.SAT


class TestAcceptance:
    @pytest.mark.parametrize("width", [64, 96, 128])
    def test_deep_counters_proved_with_certificates(self, width):
        # The workload PDR exists for: 2^width states, proved by a few
        # single-step queries — no unrolling, no BDDs.
        netlist = G.mod_counter(width)
        result = run_pdr(netlist)
        assert_certified(netlist, result)
        bmc = verify(
            G.mod_counter(width), method="bmc", max_depth=16
        )
        assert bmc.status is Status.UNKNOWN

    def test_generalization_keeps_lemmas_short(self):
        # A counter with a dead region (values 200..255 unreachable):
        # without generalization the frames would accumulate one full
        # 8-literal cube per excluded state; core dropping plus ternary
        # expansion must compress the invariant to a few short clauses.
        result = run_pdr(G.mod_counter(8, 200))
        assert result.proved
        assert result.certificate.num_clauses <= 8
        widest = max(
            (len(clause) for clause in result.certificate.clauses),
            default=0,
        )
        assert widest <= 4
        assert result.stats.get("pdr_ternary_dropped") > 0
        assert result.stats.get("pdr_core_dropped") > 0

    def test_unoptimized_variant_agrees(self):
        # generalize=False / ternary=False is the textbook algorithm:
        # slower, same verdicts, same certificate discipline.
        netlist = G.mod_counter(4, 12)
        result = run_pdr(netlist, generalize=False, ternary=False)
        assert_certified(netlist, result)
        buggy = run_pdr(
            G.mod_counter(4, 12, safe=False),
            generalize=False, ternary=False,
        )
        assert buggy.status is Status.FAILED
        assert buggy.trace.validate(G.mod_counter(4, 12, safe=False))


class TestFrameTrace:
    def test_delta_encoding_and_subsumption(self):
        frames = FrameTrace()
        frames.extend()
        frames.extend()   # N = 3
        weak, _ = frames.add(frozenset({1, -2, 3}), 1)
        assert weak is not None
        # A stronger cube at a higher level retires the weaker one.
        strong, retired = frames.add(frozenset({1, -2}), 2)
        assert retired == [weak] and weak.retired
        # A cube already covered at this level is refused.
        refused, _ = frames.add(frozenset({1, -2, 5}), 2)
        assert refused is None
        assert frames.blocking_level(frozenset({1, -2, 5}), 1) == 2
        assert frames.blocking_level(frozenset({1, -2, 5}), 3) is None
        assert frames.invariant_clauses(2) == [(-1, 2)]

    def test_promote_retires_shadowed_lemmas(self):
        frames = FrameTrace()
        frames.extend()
        frames.extend()
        strong, _ = frames.add(frozenset({1}), 1)
        weak, _ = frames.add(frozenset({1, 2}), 2)
        retired = frames.promote(strong)
        assert strong.level == 2
        assert retired == [weak]
        assert frames.at_level(2) == [strong]

    def test_init_exclusion_helpers(self):
        init = {4: False, 6: True}
        assert cube_excludes_init(frozenset({4}), init)
        assert not cube_excludes_init(frozenset({-4, 6}), init)
        assert state_to_cube(init) == frozenset({-4, 6})

    def test_solver_pool_compacts_garbage(self, monkeypatch):
        # Spent query guards and subsumed lemmas accumulate as dead
        # variables; past the limit the pool must rebuild the frame
        # solver from the live lemmas, with identical query answers.
        from repro.pdr import solver_pool
        from repro.pdr.solver_pool import SolverPool
        from repro.util.stats import StatsBag

        monkeypatch.setattr(solver_pool, "COMPACT_RETIRED_LIMIT", 3)
        netlist = G.mod_counter(3, 6)
        frames = FrameTrace()
        frames.extend()
        stats = StatsBag()
        pool = SolverPool(netlist, frames, stats)
        cube = state_to_cube(
            {node: True for node in netlist.latch_nodes}
        )
        before = pool.solver(1)
        baseline = pool.relative_query(2, cube)[0]
        for _ in range(6):   # each call retires its temporary ¬cube
            assert pool.relative_query(2, cube)[0] == baseline
        after = pool.solver(1)
        assert after is not before
        assert stats.get("pdr_solver_compactions") >= 1
        assert pool.relative_query(2, cube)[0] == baseline


class TestIntegration:
    def test_engine_registered_with_capabilities(self):
        assert "pdr" in engine_names()
        spec = get_engine("pdr")
        assert spec.complete
        assert spec.produces_trace
        assert spec.supports_constraints
        assert not spec.composite
        assert spec.options_class is PdrOptions
        assert spec.depth_field == "max_frames"
        assert spec.direction == "forward"

    def test_in_default_portfolio_candidates(self):
        from repro.portfolio.policy import default_engines, select_plan

        assert "pdr" in default_engines()
        plan = select_plan(G.mod_counter(3, 6), policy="predict")
        assert "pdr" in plan.methods

    def test_predict_prefers_pdr_on_wide_shallow_circuits(self):
        # The satellite contract: many latches, shallow per-step logic
        # → pdr ranks above both itp and bmc.
        from repro.portfolio.policy import select_plan

        plan = select_plan(G.shift_register(32), policy="predict")
        order = plan.methods
        assert order.index("pdr") < order.index("itp")
        assert order.index("pdr") < order.index("bmc")
        assert plan.features["latches"] > 30

    def test_verify_front_door(self):
        result = verify(G.mod_counter(3, 6), method="pdr", max_depth=16)
        assert result.proved
        assert result.certificate is not None

    def test_session_runs_pdr_task(self):
        session = Session()
        result = session.run(
            VerificationTask(
                G.mod_counter(3, 6), engine="pdr", max_depth=16
            )
        )
        assert result.proved
        assert result.engine == "pdr"
        assert result.certificate is not None

    def test_stats_surface_the_loop(self):
        result = run_pdr(G.mod_counter(4, 12))
        for key in ("sat_calls", "pdr_frames", "pdr_obligations",
                    "invariant_clauses", "certificates_checked"):
            assert key in result.stats, key
