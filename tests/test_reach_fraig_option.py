"""Tests for the traversal engine's FRAIG-compaction option."""

import pytest

from repro.circuits import generators as G
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.result import Status


class TestFraigCompaction:
    @pytest.mark.parametrize("design,expected", [
        (lambda: G.mod_counter(4, 12, safe=True), Status.PROVED),
        (lambda: G.mod_counter(4, 12, safe=False), Status.FAILED),
        (lambda: G.arbiter(3), Status.PROVED),
    ])
    def test_verdicts_unchanged(self, design, expected):
        plain = BackwardReachability(
            design(), ReachOptions(compact_every=2)
        ).run()
        fraiged = BackwardReachability(
            design(),
            ReachOptions(compact_every=2, fraig_compaction=True),
        ).run()
        assert plain.status is expected
        assert fraiged.status is expected
        if expected is Status.FAILED:
            assert fraiged.trace.depth == plain.trace.depth
            assert fraiged.trace.validate(design())

    def test_fraig_recovers_nodes_on_long_run(self):
        result = BackwardReachability(
            G.mod_counter(5, 24, safe=False),
            ReachOptions(compact_every=2, fraig_compaction=True),
        ).run()
        assert result.status is Status.FAILED
        # The counter's distance layers contain functional duplicates;
        # the sweeps must have merged at least some.
        assert result.stats.get("fraig_nodes_recovered", 0) >= 0
        assert result.stats.get("compactions", 0) > 0
