"""Cross-engine integration tests through the unified front-end.

Every engine must agree on every benchmark: same verdict, and for buggy
designs a validated trace of the same (shortest) depth where the engine is
shortest-path (reachability) or depth-incremental (BMC, induction base).
"""

import pytest

from repro.circuits import generators as G
from repro.mc import Status, verify
from repro.mc.result import Trace

ALL_METHODS = ["reach_aig", "reach_bdd", "bmc", "k_induction"]


class TestVerdictMatrix:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_buggy_counter(self, method):
        result = verify(
            G.mod_counter(4, 9, safe=False), method=method, max_depth=20
        )
        assert result.status is Status.FAILED
        assert result.trace.depth == 8

    @pytest.mark.parametrize(
        "method", ["reach_aig", "reach_bdd", "k_induction"]
    )
    def test_safe_counter(self, method):
        result = verify(G.mod_counter(4, 9), method=method, max_depth=20)
        assert result.status is Status.PROVED

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_buggy_ring(self, method):
        result = verify(
            G.ring_counter(5, safe=False), method=method, max_depth=20
        )
        assert result.status is Status.FAILED
        assert result.trace.depth == 4

    @pytest.mark.parametrize(
        "method",
        ["reach_aig", "reach_aig_allsat", "reach_aig_hybrid", "reach_bdd"],
    )
    def test_safe_fifo_all_traversals(self, method):
        result = verify(
            G.fifo_level(3, safe=True), method=method, max_depth=30
        )
        assert result.status is Status.PROVED

    def test_unknown_method_rejected(self):
        from repro.errors import ModelCheckingError

        with pytest.raises(ModelCheckingError):
            verify(G.traffic_light(), method="prayer")

    def test_trace_validation_is_enforced(self):
        # Hand the verifier a fabricated bad trace through a stubbed engine
        # by checking Trace.validate directly.
        net = G.mod_counter(3, 5, safe=False)
        bogus = Trace(states=[{n: True for n in net.latch_nodes}], inputs=[])
        assert not bogus.validate(net)


class TestTraceProperties:
    def test_trace_inputs_drive_state_sequence(self):
        net = G.fifo_level(3, safe=False)
        result = verify(net, method="reach_aig", max_depth=20)
        trace = result.trace
        current = dict(trace.states[0])
        for step_inputs, expected in zip(trace.inputs, trace.states[1:]):
            current = net.simulate_step(current, step_inputs)
            assert current == expected

    def test_trace_starts_at_init(self):
        net = G.ring_counter(4, safe=False)
        result = verify(net, method="reach_bdd", max_depth=20)
        assert result.trace.states[0] == net.init_assignment()

    def test_violation_inputs_present_for_arbiter(self):
        net = G.arbiter(3, safe=False)
        result = verify(net, method="reach_aig", max_depth=10)
        assert result.trace.violation_inputs is not None
        assert not net.property_holds(
            result.trace.states[-1], result.trace.violation_inputs
        )


class TestScalingSanity:
    """Moderately larger instances stay correct (and fast enough)."""

    def test_wider_counter(self):
        result = verify(
            G.mod_counter(6, 50, safe=False), method="bmc", max_depth=60
        )
        assert result.status is Status.FAILED
        assert result.trace.depth == 49

    def test_wider_counter_reach_bdd(self):
        result = verify(
            G.mod_counter(6, 50, safe=False), method="reach_bdd", max_depth=60
        )
        assert result.status is Status.FAILED
        assert result.trace.depth == 49

    def test_bigger_arbiter(self):
        result = verify(G.arbiter(5), method="reach_aig", max_depth=10)
        assert result.status is Status.PROVED

    def test_gray_counter_induction(self):
        result = verify(G.gray_counter(4), method="k_induction", max_depth=4)
        assert result.status is Status.PROVED
