"""Proof logging, the independent resolution checker, and interpolants.

The layering under test: the CDCL solver records resolution chains
(``proof=True``), :class:`ResolutionProof` replays them without trusting
the solver, and McMillan extraction turns a checked refutation into an
AIG interpolant that the DPLL oracle validates differentially.
"""

import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import Aig
from repro.aig.ops import support
from repro.errors import ProofError
from repro.itp.interpolant import extract_interpolant, verify_interpolant
from repro.itp.proof import ResolutionProof
from repro.sat import CNF, DpllSolver, Solver, SolveResult


def random_cnf(rng, max_vars=8, max_clauses=32):
    n = rng.randint(1, max_vars)
    m = rng.randint(1, max_clauses)
    f = CNF(n)
    for _ in range(m):
        width = min(rng.randint(1, 3), n)
        variables = rng.sample(range(1, n + 1), width)
        f.add_clause(rng.choice([v, -v]) for v in variables)
    return f


class TestProofLogging:
    def test_no_proof_by_default(self):
        solver = Solver()
        assert solver.proof is None
        with pytest.raises(ProofError):
            ResolutionProof.from_solver(solver)

    def test_trivial_refutation(self):
        solver = Solver(proof=True)
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve() is SolveResult.UNSAT
        proof = ResolutionProof.from_solver(solver)
        proof.check_refutation()
        assert proof.literals[proof.root] == ()

    def test_learned_chain_refutation(self):
        # Needs genuine conflict analysis, not just level-0 propagation.
        solver = Solver(proof=True)
        a, b, c = (solver.new_var() for _ in range(3))
        for clause in ([a, b], [a, -b], [-a, c], [-a, -c]):
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT
        proof = ResolutionProof.from_solver(solver)
        assert proof.check_refutation() >= 1

    def test_axioms_record_original_clauses(self):
        solver = Solver(proof=True)
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        proof = ResolutionProof.from_solver(solver)
        axioms = [set(proof.literals[i]) for i in proof.axiom_ids()]
        assert {a, b} in axioms
        assert {-a} in axioms

    def test_level0_simplified_clause_is_derived(self):
        # [-a] forces a=0, so [a, b] is attached as the derived unit [b]
        # with a chain resolving the original axiom against the unit.
        solver = Solver(proof=True)
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a])
        solver.add_clause([a, b])
        proof = ResolutionProof.from_solver(solver)
        derived = [
            i for i in range(len(proof)) if proof.chains[i]
        ]
        assert any(set(proof.literals[i]) == {b} for i in derived)
        proof.check()

    def test_tautologies_are_skipped(self):
        solver = Solver(proof=True)
        a = solver.new_var()
        solver.add_clause([a, -a])
        proof = ResolutionProof.from_solver(solver)
        assert all(set(lits) != {a, -a} for lits in proof.literals)

    def test_assumption_core_clause_logged(self):
        solver = Solver(proof=True)
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([-a, b])
        solver.add_clause([-b, -c])
        assert solver.solve([a, c]) is SolveResult.UNSAT
        proof = ResolutionProof.from_solver(solver)
        proof.check()
        assert proof.final is not None
        assert set(proof.literals[proof.final]) == {
            -lit for lit in solver.core
        }
        # The database itself stays satisfiable: no refutation root.
        assert proof.root is None
        assert solver.solve() is SolveResult.SAT

    def test_complementary_assumptions_have_no_final_clause(self):
        # The one underivable final clause: assuming both a and NOT a
        # makes the "core clause" a tautology.
        solver = Solver(proof=True)
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve([a, -a]) is SolveResult.UNSAT
        proof = ResolutionProof.from_solver(solver)
        proof.check()
        assert proof.final is None
        assert set(solver.core) == {a, -a}

    def test_proof_grows_across_incremental_calls(self):
        rng = random.Random(3)
        solver = Solver(proof=True)
        reference = CNF()
        for _ in range(4):
            extra = random_cnf(rng, max_vars=6, max_clauses=10)
            for clause in extra:
                reference.add_clause(clause)
                solver.add_clause(clause)
            outcome = solver.solve()
            assert (outcome is SolveResult.SAT) == DpllSolver(
                reference
            ).solve()
            proof = ResolutionProof.from_solver(solver)
            proof.check()
            if outcome is SolveResult.UNSAT:
                proof.check_refutation()
                break

    def test_malformed_chain_rejected(self):
        proof = ResolutionProof(
            literals=((1, 2), (-1,), (1,)),
            chains=((), (), (0, 1)),
            root=None,
        )
        with pytest.raises(ProofError, match="replays to"):
            proof.check()

    def test_forward_reference_rejected(self):
        proof = ResolutionProof(
            literals=((1,), (2,)),
            chains=((), (1,)),
        )
        with pytest.raises(ProofError, match="precede"):
            proof.replay(1)

    def test_no_single_pivot_rejected(self):
        proof = ResolutionProof(
            literals=((1, 2), (-1, -2), ()),
            chains=((), (), (0, 1)),
            root=2,
        )
        with pytest.raises(ProofError, match="complementary"):
            proof.check_refutation()


class TestSolverCore:
    """Regression: the assumption unsat core is public API now."""

    def test_core_none_after_sat(self):
        solver = Solver(proof=False)
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve() is SolveResult.SAT
        assert solver.core is None

    def test_core_subset_refutes_alone(self):
        rng = random.Random(11)
        checked = 0
        while checked < 25:
            formula = random_cnf(rng, max_vars=8, max_clauses=20)
            solver = Solver(formula)
            if solver.solve() is not SolveResult.SAT:
                continue
            assumptions = [
                rng.choice([v, -v])
                for v in rng.sample(
                    range(1, formula.num_vars + 1),
                    min(formula.num_vars, 4),
                )
            ]
            if solver.solve(assumptions) is not SolveResult.UNSAT:
                continue
            core = solver.core
            assert core is not None
            assert set(core) <= set(assumptions)
            assert solver.solve(list(core)) is SolveResult.UNSAT
            checked += 1

    def test_core_empty_when_database_unsat(self):
        solver = Solver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve([a]) is SolveResult.UNSAT
        assert solver.core == ()

    def test_core_matches_failed_assumptions(self):
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, -b])
        assert solver.solve([a, b]) is SolveResult.UNSAT
        assert set(solver.core) == set(solver.failed_assumptions)


class TestProofOverhead:
    """The satellite guard: proof=False must not pay for proof logging."""

    def _pigeonhole(self, holes):
        formula = CNF()
        pigeons, variables = holes + 1, {}
        for p in range(pigeons):
            for h in range(holes):
                variables[p, h] = formula.new_var()
        for p in range(pigeons):
            formula.add_clause(variables[p, h] for h in range(holes))
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    formula.add_clause(
                        [-variables[p1, h], -variables[p2, h]]
                    )
        return formula

    def test_disabled_logging_allocates_nothing(self):
        solver = Solver(self._pigeonhole(4))
        assert solver.solve() is SolveResult.UNSAT
        assert solver.proof is None
        assert solver._proof_clause_ids == []
        assert solver._proof_units == {}

    def test_search_identical_with_and_without_proof(self):
        # Logging must observe the search, never steer it: decision,
        # conflict, propagation and restart counts all match exactly.
        formula = self._pigeonhole(5)
        plain, logged = Solver(formula), Solver(formula, proof=True)
        assert plain.solve() is SolveResult.UNSAT
        assert logged.solve() is SolveResult.UNSAT
        plain_stats, logged_stats = plain.stats(), logged.stats()
        for key in ("conflicts", "decisions", "propagations", "restarts",
                    "learned_clauses", "db_reductions"):
            assert plain_stats[key] == logged_stats[key], key
        ResolutionProof.from_solver(logged).check_refutation()

    def test_disabled_is_not_slower_than_enabled(self):
        # A timing canary, deliberately generous: if the disabled path
        # ever does logging work, it converges toward the enabled time
        # and the structural assertions above catch the rest.
        formula = self._pigeonhole(6)

        def best_of(proof, repeats=3):
            times = []
            for _ in range(repeats):
                solver = Solver(formula, proof=proof)
                start = time.perf_counter()
                assert solver.solve() is SolveResult.UNSAT
                times.append(time.perf_counter() - start)
            return min(times)

        assert best_of(False) <= best_of(True) * 1.5


# ---------------------------------------------------------------------- #
# Interpolants over random (A, B) partitions
# ---------------------------------------------------------------------- #


@st.composite
def ab_partition(draw):
    """A clause list plus a split point, biased toward unsatisfiable."""
    num_vars = draw(st.integers(min_value=2, max_value=6))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=3)
    clauses_a = draw(st.lists(clause, min_size=2, max_size=12))
    clauses_b = draw(st.lists(clause, min_size=2, max_size=12))
    return num_vars, clauses_a, clauses_b


@settings(max_examples=120, deadline=None)
@given(ab_partition())
def test_random_partition_proof_and_interpolant(partition):
    num_vars, clauses_a, clauses_b = partition
    solver = Solver(proof=True)
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses_a:
        solver.add_clause(clause)
    split = len(solver.proof)
    for clause in clauses_b:
        solver.add_clause(clause)
    if solver.solve() is not SolveResult.UNSAT:
        return
    proof = ResolutionProof.from_solver(solver)
    # The checker accepts every logged proof...
    proof.check_refutation()
    # ...and the interpolant passes the DPLL differential check.
    aig = Aig()
    var_edge = {
        v: aig.add_input(f"v{v}") for v in range(1, num_vars + 1)
    }
    interpolant = extract_interpolant(proof, split, aig, var_edge)
    cnf_a, cnf_b = proof.partition(split)
    cnf_a.num_vars = cnf_b.num_vars = num_vars
    assert verify_interpolant(aig, interpolant, cnf_a, cnf_b, var_edge)
    # McMillan guarantees the support stays within the shared variables.
    a_vars = {abs(l) for c in clauses_a for l in c}
    b_vars = {abs(l) for c in clauses_b for l in c}
    shared_nodes = {
        var_edge[v] >> 1 for v in a_vars & b_vars
    }
    assert support(aig, interpolant) <= shared_nodes


def test_interpolant_requires_refutation():
    solver = Solver(proof=True)
    a = solver.new_var()
    solver.add_clause([a])
    assert solver.solve() is SolveResult.SAT
    proof = ResolutionProof.from_solver(solver)
    with pytest.raises(ProofError, match="root"):
        extract_interpolant(proof, 1, Aig(), {})


def test_missing_shared_mapping_rejected():
    solver = Solver(proof=True)
    a = solver.new_var()
    solver.add_clause([a])
    solver.add_clause([-a])
    assert solver.solve() is SolveResult.UNSAT
    proof = ResolutionProof.from_solver(solver)
    with pytest.raises(ProofError, match="no AIG edge"):
        extract_interpolant(proof, 1, Aig(), {})
