"""Tests for circuit-SAT sweeping (CircuitSweeper).

CircuitSweeper must be a drop-in replacement for SatSweeper's forward
sweep: function preservation is checked against BDD oracles, and merge
behaviour is compared with the CNF-backed sweeper on the same inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import Aig, edge_not
from repro.aig.ops import cofactor, or_, xor
from repro.circuits.combinational import adder_sum_parity, random_logic
from repro.sweep.circuitsweep import CircuitSweeper
from repro.sweep.satsweep import SatSweeper
from tests.conftest import build_random_aig, edges_equivalent


class TestFunctionPreservation:
    @pytest.mark.parametrize("seed", range(12))
    def test_sweep_preserves_root_function(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=30, seed=seed
        )
        sweeper = CircuitSweeper(aig)
        (new_root,), _ = sweeper.sweep([root])
        assert edges_equivalent(
            aig, root, new_root, [e >> 1 for e in inputs]
        )

    def test_sweep_merges_redundant_duplicate(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        # Two structurally different, functionally equal sub-circuits.
        f = or_(aig, aig.and_(a, b), aig.and_(a, c))
        g = aig.and_(a, or_(aig, b, c))  # distributivity
        root = xor(aig, f, g)  # constant FALSE overall
        sweeper = CircuitSweeper(aig)
        (new_root,), _ = sweeper.sweep([root])
        assert new_root == 0  # swept to constant FALSE

    def test_sweep_multiple_roots(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = edge_not(aig.and_(edge_not(a), edge_not(b)))
        sweeper = CircuitSweeper(aig)
        roots, _ = sweeper.sweep([f, g, edge_not(f)])
        assert edges_equivalent(aig, roots[0], f, [a >> 1, b >> 1])
        assert edges_equivalent(aig, roots[1], g, [a >> 1, b >> 1])
        assert roots[2] == edge_not(roots[0])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_sweep_preserves_function(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=20, seed=seed
        )
        sweeper = CircuitSweeper(aig)
        (new_root,), _ = sweeper.sweep([root])
        assert edges_equivalent(
            aig, root, new_root, [e >> 1 for e in inputs]
        )


class TestAgainstCnfSweeper:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_merge_yield_as_cnf_sweeper(self, seed):
        # Both sweepers see identical signatures (same seed), so their
        # candidate classes coincide; verdicts must then agree everywhere,
        # producing the same final representative for the root.
        aig_a, inputs_a, root_a = build_random_aig(
            num_inputs=5, num_gates=40, seed=seed
        )
        aig_b, inputs_b, root_b = build_random_aig(
            num_inputs=5, num_gates=40, seed=seed
        )
        circuit = CircuitSweeper(aig_a, seed=7)
        cnf = SatSweeper(aig_b, seed=7)
        (new_a,), _ = circuit.sweep([root_a])
        (new_b,), _ = cnf.sweep([root_b])
        assert aig_a.cone_and_count(new_a) == aig_b.cone_and_count(new_b)

    def test_cofactor_pair_sharing(self):
        aig, inputs, root = adder_sum_parity(6)
        var = inputs[0] >> 1
        cof0 = cofactor(aig, root, var, False)
        cof1 = cofactor(aig, root, var, True)
        sweeper = CircuitSweeper(aig)
        (new0, new1), _ = sweeper.sweep([cof0, cof1])
        assert edges_equivalent(
            aig, cof0, new0, [e >> 1 for e in inputs]
        )
        assert edges_equivalent(
            aig, cof1, new1, [e >> 1 for e in inputs]
        )

    def test_counterexamples_feed_signatures(self):
        aig, _, root = random_logic(8, 60, seed=11)
        sweeper = CircuitSweeper(aig, sim_words=1, seed=3)
        sweeper.sweep([root])
        # With one word of random patterns some false candidates are
        # expected; each SAT (different) verdict must be learned.
        if sweeper.stats.get("proved_different"):
            assert sweeper.stats.get("counterexamples_learned") > 0


class TestStatsContract:
    def test_stats_keys_match_satsweeper(self):
        aig, _, root = random_logic(6, 40, seed=5)
        sweeper = CircuitSweeper(aig)
        sweeper.sweep([root])
        # The ablation benches read these keys from either engine.
        for key in ("sat_checks",):
            assert key in sweeper.stats or sweeper.stats.get(key) == 0
