"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the tracer core (span nesting, JSONL round-trip, Chrome
``trace_event`` schema), the probe hooks' zero-cost-when-disabled
contract (stats-identical search trajectories), the ``mc.verify(trace=)``
wiring, the subprocess trace merge through the portfolio runner pipe,
and the post-run :class:`~repro.obs.report.RunReport`.
"""

import json
import os

import pytest

from repro import obs
from repro.circuits.generators import mod_counter, ring_counter
from repro.circuits.library import handshake
from repro.mc.engine import verify
from repro.mc.result import Status
from repro.obs import NULL_SPAN, CounterRecord, SpanRecord, Tracer, probes


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with tracing off, whatever it does."""
    obs.disable()
    yield
    obs.disable()


class TestTracerSpans:
    def test_span_records_name_category_attrs(self):
        tracer = Tracer()
        with tracer.span("work", "engine", k=3):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.category == "engine"
        assert span.attrs == {"k": 3}
        assert span.duration >= 0.0
        assert span.pid == os.getpid()

    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, recorded_outer = tracer.spans
        assert inner.name == "inner"
        assert inner.parent_id == recorded_outer.span_id
        assert recorded_outer.parent_id is None
        assert outer is not None  # the context manager itself

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.spans
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_set_attaches_mid_span_attrs(self):
        tracer = Tracer()
        with tracer.span("round") as span:
            span.set(verdict="proved")
        assert tracer.spans[0].attrs["verdict"] == "proved"

    def test_record_span_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            start = tracer.now()
            tracer.record_span("solve", "sat", start, tracer.now(), n=1)
        solve, outer = tracer.spans
        assert solve.parent_id == outer.span_id
        assert solve.attrs == {"n": 1}

    def test_span_ids_unique_and_pid_tagged(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == 5
        assert all(span_id >> 20 == os.getpid() for span_id in ids)


class TestTickThrottle:
    def test_should_sample_enforces_tick(self):
        tracer = Tracer(tick=10.0)
        assert tracer.should_sample("sat.conflicts")
        assert not tracer.should_sample("sat.conflicts")
        # Different series have independent clocks.
        assert tracer.should_sample("bdd.nodes")

    def test_zero_tick_always_samples(self):
        tracer = Tracer(tick=0.0)
        assert tracer.should_sample("x")
        assert tracer.should_sample("x")


class TestExportFormats:
    def _populated(self):
        tracer = Tracer()
        with tracer.span("mc.verify", "engine", engine="pdr"):
            with tracer.span("pdr.block_cube", "frames", frame=1):
                pass
        tracer.sample("sat.conflicts", 17)
        return tracer

    def test_chrome_trace_schema(self):
        doc = self._populated().to_chrome_trace()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {
            "mc.verify", "pdr.block_cube"
        }
        for event in complete:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        (counter,) = counters
        assert counter["name"] == "sat.conflicts"
        assert counter["args"] == {"value": 17.0}
        assert metadata and all(
            e["name"] == "process_name" for e in metadata
        )

    def test_chrome_trace_is_json_serializable(self, tmp_path):
        path = tmp_path / "trace.json"
        self._populated().write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._populated()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        loaded = Tracer.read_jsonl(path)
        assert len(loaded.spans) == len(tracer.spans)
        assert len(loaded.counters) == len(tracer.counters)
        by_id = {span.span_id: span for span in loaded.spans}
        for original in tracer.spans:
            restored = by_id[original.span_id]
            assert restored.name == original.name
            assert restored.category == original.category
            assert restored.parent_id == original.parent_id
            assert restored.attrs == original.attrs
            assert restored.start == pytest.approx(original.start)
        assert loaded.counters[0].value == 17.0
        assert loaded.wall_epoch == pytest.approx(tracer.wall_epoch)

    def test_merge_records_folds_both_kinds(self):
        parent = Tracer()
        worker = Tracer(epoch=parent.epoch)
        with worker.span("worker.work", "sat"):
            pass
        worker.sample("sat.conflicts", 3)
        parent.merge_records(worker.export_records())
        assert [s.name for s in parent.spans] == ["worker.work"]
        assert [c.value for c in parent.counters] == [3.0]

    def test_record_round_trip_dataclasses(self):
        span = SpanRecord(
            name="a", category="sat", start=0.5, duration=0.25,
            pid=7, tid=1, span_id=42, parent_id=41, attrs={"k": 1},
        )
        assert SpanRecord.from_record(span.to_record()) == span
        counter = CounterRecord(name="c", t=1.5, value=2.0, pid=7)
        assert CounterRecord.from_record(counter.to_record()) == counter


class TestEnableDisable:
    def test_disabled_span_is_shared_null_span(self):
        assert obs.span("anything") is NULL_SPAN
        with obs.span("anything") as span:
            span.set(ignored=True)  # must be a silent no-op

    def test_enable_disable_cycle(self):
        assert not obs.is_enabled()
        tracer = obs.enable()
        assert obs.is_enabled()
        assert obs.current_tracer() is tracer
        assert obs.disable() is tracer
        assert not obs.is_enabled()
        assert obs.current_tracer() is None

    def test_enable_is_idempotent(self):
        first = obs.enable()
        assert obs.enable() is first
        assert obs.enable(Tracer()) is first  # active tracer kept

    def test_enabled_span_records(self):
        tracer = obs.enable()
        with obs.span("probe.test", "sat", k=1):
            pass
        assert tracer.spans[0].name == "probe.test"

    def test_module_flag_tracks_state(self):
        assert probes.ENABLED is False
        obs.enable()
        assert probes.ENABLED is True
        obs.disable()
        assert probes.ENABLED is False


class TestBddTickDirectReads:
    """``bdd_tick`` reads the manager's scalar counters and cache lens
    directly (no summary dict per tick); its samples must stay
    numerically identical to what :meth:`cache_summary` reports."""

    def test_bdd_tick_matches_cache_summary(self):
        from repro.bdd.manager import BddManager

        manager = BddManager()
        a, b, c = (manager.new_var() for _ in range(3))
        f = manager.and_(a, manager.or_(b, manager.not_(c)))
        manager.and_(a, manager.or_(b, manager.not_(c)))  # cache hits
        manager.exists(f, [1])

        tracer = Tracer(tick=0.0)
        probes.activate(tracer)
        try:
            probes.bdd_tick(manager)
        finally:
            probes.deactivate()

        sampled = {rec.name: rec.value for rec in tracer.counters}
        summary = manager.cache_summary()
        assert sampled["bdd.nodes"] == manager.num_nodes
        assert sampled["bdd.cache_hit_rate"] == summary["cache_hit_rate"]
        assert sampled["bdd.cache_entries"] == summary["cache_entries"]
        assert summary["cache_hits"] > 0


class TestZeroCostDisabled:
    """With tracing off, runs must be stats-identical to the seed
    behaviour — the probes only *read* kernel counters, so enabling them
    must not change any search trajectory either."""

    @pytest.mark.parametrize("method", ["pdr", "itp", "reach_bdd", "bmc"])
    def test_traced_run_is_stats_identical(self, method):
        netlist = handshake(True)
        baseline = verify(netlist, method=method, max_depth=24)
        traced = verify(netlist, method=method, max_depth=24, trace=True)
        rerun = verify(netlist, method=method, max_depth=24)
        assert not obs.is_enabled()
        assert baseline.status is traced.status
        assert baseline.iterations == traced.iterations
        # The scalar stats (sat_calls, conflicts, frontier sizes, ...)
        # are the regression oracle: bit-identical trajectories.
        assert baseline.stats.as_dict() == traced.stats.as_dict()
        assert baseline.stats.as_dict() == rerun.stats.as_dict()

    @pytest.mark.parametrize("method", ["pdr", "itp"])
    def test_failing_run_is_stats_identical(self, method):
        netlist = handshake(False)
        baseline = verify(netlist, method=method, max_depth=24)
        traced = verify(netlist, method=method, max_depth=24, trace=True)
        assert baseline.status is Status.FAILED
        assert traced.status is Status.FAILED
        assert baseline.stats.as_dict() == traced.stats.as_dict()

    def test_cnc_traced_run_is_stats_identical(self):
        # workers=0 keeps the conquer in-process and deterministic, so
        # the cnc probes are held to the same bar as the other engines:
        # bit-identical scalar stats with tracing on or off.
        netlist = handshake(False)
        kwargs = dict(method="cnc", max_depth=12, workers=0)
        baseline = verify(netlist, **kwargs)
        traced = verify(netlist, **kwargs, trace=True)
        assert baseline.status is traced.status is Status.FAILED
        assert baseline.stats.as_dict() == traced.stats.as_dict()
        names = {span.name for span in traced.tracer.spans}
        assert {"cnc.unroll", "cnc.cube", "cnc.conquer",
                "sat.solve"} <= names
        series = {rec.name for rec in traced.tracer.counters}
        assert {"cnc.open_cubes", "cnc.solved_cubes",
                "cnc.refuted_cubes", "cnc.active_workers"} <= series


class TestVerifyTraceWiring:
    def test_trace_true_attaches_tracer(self):
        result = verify(mod_counter(4), method="pdr", max_depth=32,
                        trace=True)
        assert result.proved
        tracer = result.tracer
        names = {span.name for span in tracer.spans}
        assert "mc.verify" in names
        assert "sat.solve" in names
        categories = {span.category for span in tracer.spans}
        # The acceptance bar: spans from at least three layers.
        assert {"engine", "frames", "sat"} <= categories

    def test_trace_path_writes_chrome_file(self, tmp_path):
        path = tmp_path / "run.json"
        result = verify(mod_counter(4), method="pdr", max_depth=32,
                        trace=str(path))
        assert result.proved
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"engine", "frames", "sat"} <= cats

    def test_trace_ready_made_tracer(self):
        tracer = Tracer(tick=0.0)
        result = verify(mod_counter(4), method="pdr", max_depth=32,
                        trace=tracer)
        assert result.tracer is tracer
        assert tracer.spans

    def test_bdd_engine_produces_bdd_layer(self):
        result = verify(mod_counter(4), method="reach_bdd",
                        max_depth=32, trace=True)
        categories = {span.category for span in result.tracer.spans}
        assert "bdd" in categories
        counters = {c.name for c in result.tracer.counters}
        assert "bdd.nodes" in counters

    def test_itp_engine_samples_interpolants(self):
        result = verify(mod_counter(4), method="itp", max_depth=16,
                        trace=True)
        names = {span.name for span in result.tracer.spans}
        assert "itp.round" in names
        assert "itp.interpolant" in names
        assert "itp.interpolant_nodes" in result.stats.series_keys()

    def test_invalid_trace_argument_raises(self):
        with pytest.raises(TypeError):
            verify(mod_counter(4), method="bmc", trace=3.14)

    def test_root_span_reused_when_already_enabled(self):
        tracer = obs.enable()
        result = verify(mod_counter(4), method="bmc", max_depth=8)
        assert not hasattr(result, "tracer")  # fast path, no rebinding
        assert any(s.name == "mc.verify" for s in tracer.spans)

    def test_tracing_restored_after_exception(self):
        with pytest.raises(Exception):
            verify(mod_counter(4), method="no_such_engine", trace=True)
        assert not obs.is_enabled()


class TestSubprocessMerge:
    def test_portfolio_workers_stream_spans_back(self):
        from repro.portfolio.runner import run_portfolio

        tracer = obs.enable()
        try:
            outcome = run_portfolio(
                mod_counter(4), ["pdr"], max_depth=32, budget=60.0,
            )
        finally:
            obs.disable()
        assert outcome.result.proved
        worker_pids = {s.pid for s in tracer.spans} - {os.getpid()}
        assert worker_pids, "no worker spans merged back"
        worker_spans = [s for s in tracer.spans if s.pid != os.getpid()]
        names = {span.name for span in worker_spans}
        assert "mc.verify" in names
        assert "sat.solve" in names
        # Worker records share the parent's epoch: their offsets must be
        # small positive numbers, not absolute perf_counter readings.
        assert all(0 <= span.start < 60.0 for span in worker_spans)

    def test_verify_portfolio_trace_merges_one_timeline(self):
        result = verify(
            mod_counter(4), method="portfolio", max_depth=32,
            engines=["pdr"], budget=60.0, trace=True,
        )
        assert result.proved
        pids = {span.pid for span in result.tracer.spans}
        assert len(pids) >= 2  # parent + at least one worker

    def test_untraced_portfolio_sends_no_obs(self):
        from repro.portfolio.runner import run_portfolio

        outcome = run_portfolio(
            mod_counter(4), ["bmc"], max_depth=8, budget=60.0,
        )
        assert outcome.result.status is Status.UNKNOWN  # safe circuit


class TestEngineEvents:
    def test_run_portfolio_emits_lifecycle_events(self):
        from repro.portfolio.runner import run_portfolio

        events = []
        outcome = run_portfolio(
            mod_counter(4), ["pdr"], max_depth=32, budget=60.0,
            on_event=events.append,
        )
        assert outcome.result.proved
        kinds = [event["kind"] for event in events]
        assert kinds == ["engine_started", "engine_finished"]
        assert all(event["engine"] == "pdr" for event in events)
        assert events[1]["label"] == "proved"

    def test_cancelled_engines_emit_cancelled(self):
        from repro.portfolio.runner import run_portfolio

        events = []
        run_portfolio(
            ring_counter(3), ["bmc", "pdr"], max_depth=16, budget=60.0,
            jobs=1, on_event=events.append,
        )
        kinds = {event["kind"] for event in events}
        assert "engine_cancelled" in kinds or "engine_finished" in kinds

    def test_session_forwards_engine_events(self):
        from repro.api import Session

        seen = []
        session = Session(on_progress=seen.append)
        result = session.verify(
            mod_counter(4), engine="pdr", timeout=60.0
        )
        assert result.proved
        kinds = [event.kind for event in seen]
        assert kinds == [
            "task_started", "engine_started", "engine_finished",
            "task_finished",
        ]
        started = seen[1]
        assert started.engine == "pdr"
        assert started.task is not None


class TestRunReport:
    def _traced_result(self):
        return verify(mod_counter(4), method="pdr", max_depth=32,
                      trace=True)

    def test_build_report_fields(self):
        result = self._traced_result()
        report = obs.build_report(result, result.tracer)
        assert report.engine == "pdr"
        assert report.status == "proved"
        assert report.wall_seconds > 0.0
        assert report.span_count == len(result.tracer.spans)
        phase_names = {phase.name for phase in report.phases}
        assert "sat.solve" in phase_names
        assert report.timeline[0]["name"] == "mc.verify"
        assert "sat_calls" in report.counters
        assert "pdr_frames" in report.gauges
        series_names = {series.name for series in report.series}
        assert "sat.conflicts" in series_names

    def test_report_without_tracer_still_splits_stats(self):
        result = verify(mod_counter(4), method="pdr", max_depth=32)
        report = obs.build_report(result)
        assert report.span_count == 0
        assert "sat_calls" in report.counters
        assert "pdr_frames" in report.gauges

    def test_report_json_round_trip(self, tmp_path):
        result = self._traced_result()
        report = obs.build_report(result, result.tracer)
        path = tmp_path / "report.json"
        report.write_json(path)
        doc = json.loads(path.read_text())
        assert doc["engine"] == "pdr"
        assert doc["status"] == "proved"
        assert doc == report.to_dict()

    def test_render_is_human_readable(self):
        result = self._traced_result()
        text = obs.build_report(result, result.tracer).render()
        assert "run report: pdr -> proved" in text
        assert "phases:" in text
        assert "sat.solve" in text
