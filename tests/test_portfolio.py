"""Tests for the portfolio subsystem: hashing, cache, runner, policies,
batch API, and the ``verify(method="portfolio")`` dispatch."""

import pytest

from repro.aig.graph import edge_not
from repro.circuits import generators as G
from repro.circuits.library import handshake
from repro.circuits.netlist import Netlist
from repro.errors import ModelCheckingError, ReproError
from repro.mc import verify
from repro.mc.reach_aig import ReachOptions
from repro.mc.result import Status
from repro.portfolio import (
    ResultCache,
    check_many,
    circuit_features,
    default_engines,
    portfolio_verify,
    run_portfolio,
    select_plan,
    structural_hash,
)
from repro.sweep.fraig import fraig_netlist
from repro.util.stats import StatsBag


def _toggle_netlist(scrambled: bool = False) -> Netlist:
    """The same two-latch circuit, with AND nodes created in a different
    order (and dead logic left behind) when ``scrambled``."""
    netlist = Netlist("toggle")
    a = netlist.add_latch("a", init=False)
    b = netlist.add_latch("b", init=True)
    aig = netlist.aig
    if scrambled:
        aig.and_(a, edge_not(b))       # dead node, shifts all later ids
        both = aig.and_(b, a)          # operand order reversed
    else:
        both = aig.and_(a, b)
    netlist.set_next(a, edge_not(a))
    netlist.set_next(b, edge_not(both))
    netlist.set_property(edge_not(both))
    netlist.validate()
    return netlist


class TestStructuralHash:
    def test_invariant_under_node_renumbering(self):
        assert structural_hash(_toggle_netlist()) == structural_hash(
            _toggle_netlist(scrambled=True)
        )

    def test_invariant_under_clone(self):
        netlist = G.mod_counter(4, 12)
        clone, _, _ = netlist.clone()
        assert structural_hash(netlist) == structural_hash(clone)

    def test_sensitive_to_init_values(self):
        one = _toggle_netlist()
        other = _toggle_netlist()
        other.latches[0].init = True
        assert structural_hash(one) != structural_hash(other)

    def test_sensitive_to_property(self):
        safe = G.mod_counter(4, 12, safe=True)
        buggy = G.mod_counter(4, 12, safe=False)
        assert structural_hash(safe) != structural_hash(buggy)

    def test_sensitive_to_next_functions(self):
        one = _toggle_netlist()
        other = _toggle_netlist()
        other.latches[0].next_edge = edge_not(other.latches[0].next_edge)
        assert structural_hash(one) != structural_hash(other)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        netlist = G.mod_counter(3, 6)
        assert cache.lookup(netlist, "reach_aig", 50) is None
        result = verify(netlist, method="reach_aig", max_depth=50)
        cache.store(netlist, "reach_aig", 50, result)
        hit = cache.lookup(netlist, "reach_aig", 50)
        assert hit is not None
        assert hit.status is Status.PROVED
        assert cache.hits == 1 and cache.misses == 1

    def test_keyed_by_method_and_depth(self):
        cache = ResultCache()
        netlist = G.mod_counter(3, 6)
        cache.store(netlist, "reach_aig", 50, verify(netlist, max_depth=50))
        assert cache.lookup(netlist, "bmc", 50) is None
        assert cache.lookup(netlist, "reach_aig", 51) is None

    def test_persistence_round_trip_with_trace(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        writer = ResultCache(path)
        buggy = handshake(False)
        result = verify(buggy, method="bmc", max_depth=20)
        assert result.status is Status.FAILED
        writer.store(buggy, "bmc", 20, result)
        # A fresh process would rebuild the netlist in its own manager:
        # simulate that with a clone (different node numbering).
        reader = ResultCache(path)
        fresh, _, _ = handshake(False).clone()
        hit = reader.lookup(fresh, "bmc", 20)
        assert hit is not None
        assert hit.status is Status.FAILED
        assert hit.trace.validate(fresh)

    def test_unknown_budget_stamps(self):
        cache = ResultCache()
        netlist = G.mod_counter(3, 6)
        unknown = verify(netlist, method="bmc", max_depth=2)
        assert unknown.status is Status.UNKNOWN
        cache.store(netlist, "bmc", 2, unknown, budget=1.0)
        # More budget than the stamp: the caller deserves a fresh run.
        assert cache.lookup(netlist, "bmc", 2, budget=2.0) is None
        # Same or less: the stored UNKNOWN answers it.
        assert cache.lookup(netlist, "bmc", 2, budget=1.0) is not None
        assert cache.lookup(netlist, "bmc", 2, budget=0.5) is not None

    def test_undecodable_record_is_a_miss_not_a_crash(self):
        cache = ResultCache()
        buggy = handshake(False)
        result = verify(buggy, method="bmc", max_depth=20)
        cache.store(buggy, "bmc", 20, result)
        # Corrupt the stored trace so it no longer decodes.
        (record,) = cache._entries.values()
        record["trace"]["states"] = ["0" * 99]
        assert cache.lookup(handshake(False), "bmc", 20) is None
        assert cache.misses == 1

    def test_lru_eviction_bounds_memory(self):
        cache = ResultCache(max_memory_entries=2)
        for modulus in (5, 6, 7):
            netlist = G.mod_counter(3, modulus)
            cache.store(netlist, "reach_aig", 50, verify(netlist, max_depth=50))
        assert len(cache) == 2
        assert cache.lookup(G.mod_counter(3, 5), "reach_aig", 50) is None
        assert cache.lookup(G.mod_counter(3, 7), "reach_aig", 50) is not None


class TestRunner:
    def test_race_returns_validated_counterexample(self):
        buggy = handshake(False)
        outcome = run_portfolio(
            buggy, ["bmc", "reach_aig", "reach_bdd"], budget=10.0
        )
        assert outcome.winner is not None
        assert outcome.result.status is Status.FAILED
        assert outcome.result.trace.validate(handshake(False))

    def test_race_cancels_losers(self):
        # bmc cracks bug_at_depth in ~10ms; the traversal takes ~50x that.
        outcome = run_portfolio(
            G.bug_at_depth(25), ["reach_aig", "bmc"], budget=30.0, jobs=2
        )
        assert outcome.winner == "bmc"
        labels = {o.method: o.label for o in outcome.outcomes}
        assert labels["reach_aig"] == "cancelled"
        assert len(outcome.outcomes) == 2

    def test_timeout_maps_to_unknown_within_budget(self):
        budget = 0.05
        outcome = run_portfolio(
            G.bug_at_depth(25), ["reach_aig"], budget=budget
        )
        assert outcome.winner is None
        assert outcome.result.status is Status.UNKNOWN
        (timed_out,) = outcome.outcomes
        assert timed_out.timed_out
        # Enforcement promise: never exceed the budget by more than 2x.
        assert timed_out.elapsed < 2 * budget

    def test_crash_maps_to_unknown(self):
        netlist = G.mod_counter(3, 6)
        # An unknown engine option crashes the worker inside verify().
        outcome = run_portfolio(
            netlist,
            ["bmc"],
            budget=5.0,
            engine_options={"no_such_option": True},
        )
        assert outcome.winner is None
        assert outcome.result.status is Status.UNKNOWN
        assert outcome.outcomes[0].crashed

    def test_unknowns_do_not_win(self):
        # bmc alone cannot prove a safe design: no winner, UNKNOWN result.
        outcome = run_portfolio(G.mod_counter(3, 6), ["bmc"], budget=10.0)
        assert outcome.winner is None
        assert outcome.result.status is Status.UNKNOWN

    def test_empty_method_list_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio(G.mod_counter(3, 6), [], budget=1.0)

    def test_agreement_mode_runs_every_engine(self):
        # stop_on_decisive=False must not drop queued engines once a
        # winner lands, even with a single worker slot.
        outcome = run_portfolio(
            G.mod_counter(3, 6, safe=False),
            ["bmc", "reach_aig", "reach_bdd"],
            budget=30.0,
            jobs=1,
            stop_on_decisive=False,
        )
        assert len(outcome.outcomes) == 3
        assert all(not o.cancelled for o in outcome.outcomes)
        assert all(
            o.result.status is Status.FAILED for o in outcome.outcomes
        )


class TestPolicies:
    def test_race_all_keeps_order_and_parallelism(self):
        plan = select_plan(G.mod_counter(3, 6), policy="race_all")
        assert plan.parallel
        assert "reach_aig" in plan.methods

    def test_sequential_fallback_puts_cheap_engines_first(self):
        plan = select_plan(
            G.mod_counter(3, 6),
            policy="sequential_fallback",
            engines=["reach_aig", "bmc", "reach_bdd", "k_induction"],
        )
        assert not plan.parallel
        assert plan.methods[:2] == ["bmc", "k_induction"]

    def test_predict_ranks_all_requested_engines(self):
        plan = select_plan(G.arbiter(4), policy="predict")
        assert sorted(plan.methods) == sorted(default_engines())
        assert plan.features["latches"] > 0
        assert plan.features["ands"] > 0

    def test_default_engines_include_forward_traversals(self):
        # Capability-derived defaults: the forward engines are candidates
        # (the hand-maintained list used to omit them), composite and
        # forced-option variant engines are not.
        defaults = default_engines()
        assert "reach_aig_fwd" in defaults
        assert "reach_bdd_fwd" in defaults
        assert "portfolio" not in defaults
        assert "reach_aig_allsat" not in defaults
        assert "reach_aig_hybrid" not in defaults

    def test_predict_ranks_cnc_first_on_wide_arithmetic_miters(self):
        # The cnc score is tuned for wide-input deep-logic cones: it must
        # lead on the multiplier miter and stay behind the quick
        # bounded/inductive engines on a narrow sequential counter.
        plan = select_plan(G.multiplier_miter(4), policy="predict")
        assert plan.methods[0] == "cnc"
        counter_plan = select_plan(G.mod_counter(4, 12), policy="predict")
        assert "cnc" in counter_plan.methods
        assert "cnc" not in counter_plan.methods[:2]

    def test_features_are_cheap_structural_counts(self):
        features = circuit_features(G.mod_counter(4, 12))
        assert features["latches"] == 4
        assert features["ands"] > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            select_plan(G.mod_counter(3, 6), policy="alphago")


class TestPortfolioVerify:
    def test_mixed_batch_matches_single_engine_verdicts(self, tmp_path):
        designs = [
            (G.mod_counter(4, 12), Status.PROVED),
            (G.mod_counter(4, 12, safe=False), Status.FAILED),
            (G.ring_counter(5), Status.PROVED),
            (G.arbiter(3), Status.PROVED),
            (handshake(False), Status.FAILED),
            (G.fifo_level(3, safe=False), Status.FAILED),
            (G.mod_counter(4, 12), Status.PROVED),  # structural duplicate
        ]
        budget = 20.0
        stats = StatsBag()
        results = portfolio_verify(
            [netlist for netlist, _ in designs],
            budget=budget,
            cache=tmp_path / "cache.jsonl",
            stats=stats,
        )
        for (netlist, expected), result in zip(designs, results):
            assert result.status is expected
            if expected is Status.FAILED:
                reference = verify(netlist.clone()[0], method="reach_aig")
                assert result.trace.depth == reference.trace.depth
                assert result.trace.validate(netlist.clone()[0])
        # The duplicate design must be served from cache.
        assert stats.get("served_from_cache") >= 1
        assert stats.get("cache_hits") >= 1
        # No engine may overrun its wall-clock budget by more than 2x.
        assert stats.get("max_engine_seconds") < 2 * budget

    def test_single_netlist_returns_single_result(self):
        result = portfolio_verify(G.mod_counter(3, 6), budget=10.0)
        assert result.status is Status.PROVED

    def test_cross_call_cache_hit(self):
        cache = ResultCache()
        first = portfolio_verify(G.ring_counter(4), cache=cache, budget=10.0)
        second = portfolio_verify(G.ring_counter(4), cache=cache, budget=10.0)
        assert first.status is second.status is Status.PROVED
        assert second.stats.get("cache_hit") == 1
        assert cache.hits >= 1

    def test_fraig_preprocess_preserves_verdicts_and_traces(self):
        safe = portfolio_verify(
            G.mod_counter(4, 12), fraig_preprocess=True, budget=10.0
        )
        assert safe.status is Status.PROVED
        buggy = portfolio_verify(
            G.mod_counter(4, 12, safe=False),
            fraig_preprocess=True,
            budget=10.0,
        )
        assert buggy.status is Status.FAILED
        # The trace is remapped onto (and replays on) the *original* netlist.
        assert buggy.trace.validate(G.mod_counter(4, 12, safe=False))

    def test_fraig_netlist_poses_same_problem(self):
        netlist = G.arbiter(3)
        reduced = fraig_netlist(netlist)
        assert reduced.num_latches == netlist.num_latches
        assert [l.name for l in reduced.latches] == [
            l.name for l in netlist.latches
        ]
        assert reduced.aig.num_ands <= netlist.aig.num_ands
        assert (
            verify(reduced, method="reach_aig").status
            is verify(netlist.clone()[0], method="reach_aig").status
        )

    def test_sequential_policy_verdicts(self):
        results = portfolio_verify(
            [G.mod_counter(3, 6), G.mod_counter(3, 6, safe=False)],
            policy="sequential_fallback",
            budget=10.0,
        )
        assert results[0].status is Status.PROVED
        assert results[1].status is Status.FAILED

    def test_predict_policy_verdicts(self):
        result = portfolio_verify(
            G.ring_counter(4), policy="predict", budget=10.0
        )
        assert result.status is Status.PROVED

    def test_cached_invalid_counterexample_triggers_rerun(self):
        # A poisoned cache entry (FAILED whose trace does not replay)
        # must not be served; the engine re-runs and the truth wins.
        from repro.mc.result import Trace, VerificationResult

        cache = ResultCache()
        safe = G.mod_counter(3, 6)
        bogus = VerificationResult(
            status=Status.FAILED,
            engine="bmc",
            trace=Trace(states=[{}, {}], inputs=[{}]),
        )
        for method in ("bmc", "k_induction", "reach_aig", "reach_bdd"):
            cache.store(safe, method, 100, bogus)
        result = portfolio_verify(G.mod_counter(3, 6), cache=cache, budget=10.0)
        assert result.status is Status.PROVED

    def test_shared_cache_stats_count_per_call_deltas(self):
        cache = ResultCache()
        stats = StatsBag()
        check_many([G.ring_counter(4)], budget=10.0, cache=cache, stats=stats)
        first_hits = stats.get("cache_hits")
        check_many([G.ring_counter(4)], budget=10.0, cache=cache, stats=stats)
        # The second call adds only its own hits, not the running total.
        assert stats.get("cache_hits") - first_hits <= len(default_engines())
        assert stats.get("cache_hits") >= 1

    def test_check_many_shares_cache_within_batch(self):
        stats = StatsBag()
        results = check_many(
            [G.ring_counter(4), G.ring_counter(4)],
            budget=10.0,
            stats=stats,
        )
        assert all(r.status is Status.PROVED for r in results)
        assert stats.get("served_from_cache") == 1


class TestVerifyDispatch:
    def test_portfolio_method(self):
        result = verify(
            handshake(False), method="portfolio", budget=10.0
        )
        assert result.status is Status.FAILED
        assert result.trace.validate(handshake(False))

    def test_unknown_method_still_rejected(self):
        with pytest.raises(ModelCheckingError):
            verify(G.mod_counter(3, 6), method="quantum")


class TestReachOptionsNormalization:
    """Regression: options=ReachOptions(...) used to TypeError on the
    allsat/hybrid branches, which built ReachOptions from **options."""

    @pytest.mark.parametrize(
        "method", ["reach_aig", "reach_aig_allsat", "reach_aig_hybrid"]
    )
    def test_options_object_accepted_everywhere(self, method):
        result = verify(
            G.mod_counter(3, 6),
            method=method,
            options=ReachOptions(max_iterations=50),
        )
        assert result.status is Status.PROVED

    def test_method_forces_elimination_mode(self):
        # The method name wins over the object's input_elimination field.
        result = verify(
            G.mod_counter(3, 6, safe=False),
            method="reach_aig_allsat",
            options=ReachOptions(max_iterations=50),
        )
        assert result.status is Status.FAILED

    def test_mixing_object_and_loose_keywords_rejected(self):
        with pytest.raises(ModelCheckingError):
            verify(
                G.mod_counter(3, 6),
                method="reach_aig",
                options=ReachOptions(),
                compact_every=2,
            )

    def test_loose_keywords_still_work(self):
        result = verify(
            G.mod_counter(3, 6), method="reach_aig", compact_every=2
        )
        assert result.status is Status.PROVED
