"""Tests for forward AIG reachability (the backward engine's twin).

The forward engine must agree with the backward AIG engine and the BDD
engines on every design, and its counterexample traces must replay.
"""

import pytest

from repro.circuits import generators as G
from repro.circuits.library import handshake, s27_with_property
from repro.core.quantify import QuantifyOptions
from repro.errors import ModelCheckingError
from repro.mc.engine import verify
from repro.mc.reach_aig_fwd import (
    ForwardReachability,
    ForwardReachOptions,
    forward_reachability,
)
from repro.mc.reach_bdd import bdd_forward_reachability
from repro.mc.result import Status

SAFE_DESIGNS = {
    "mod_counter_3_6": lambda: G.mod_counter(3, 6, safe=True),
    "ring_counter_4": lambda: G.ring_counter(4),
    "arbiter_3": lambda: G.arbiter(3),
    "gray_3": lambda: G.gray_counter(3),
    "handshake": lambda: handshake(True),
    "s27": s27_with_property,
}

BUGGY_DESIGNS = {
    "mod_counter_3_6_bug": lambda: G.mod_counter(3, 6, safe=False),
    "arbiter_3_bug": lambda: G.arbiter(3, safe=False),
    "handshake_bug": lambda: handshake(False),
    "bug_at_depth_4": lambda: G.bug_at_depth(4),
}


class TestVerdicts:
    @pytest.mark.parametrize("design", list(SAFE_DESIGNS))
    def test_safe_designs_proved(self, design):
        result = forward_reachability(SAFE_DESIGNS[design]())
        assert result.status is Status.PROVED
        assert result.iterations > 0

    @pytest.mark.parametrize("design", list(BUGGY_DESIGNS))
    def test_buggy_designs_failed_with_valid_trace(self, design):
        netlist = BUGGY_DESIGNS[design]()
        result = forward_reachability(netlist)
        assert result.status is Status.FAILED
        assert result.trace is not None
        assert result.trace.validate(BUGGY_DESIGNS[design]())

    @pytest.mark.parametrize("design", list(BUGGY_DESIGNS))
    def test_counterexample_depth_matches_backward_engine(self, design):
        forward = forward_reachability(BUGGY_DESIGNS[design]())
        backward = verify(BUGGY_DESIGNS[design](), method="reach_aig")
        # Both engines are breadth-first, so both find shortest traces.
        assert forward.trace.depth == backward.trace.depth

    @pytest.mark.parametrize("design", list(SAFE_DESIGNS))
    def test_agrees_with_bdd_forward(self, design):
        aig_result = forward_reachability(SAFE_DESIGNS[design]())
        bdd_result = bdd_forward_reachability(SAFE_DESIGNS[design]())
        assert aig_result.status == bdd_result.status


class TestOptionsAndErrors:
    def test_requires_property(self):
        from repro.circuits.library import s27

        with pytest.raises(ModelCheckingError):
            ForwardReachability(s27())

    def test_iteration_budget_gives_unknown(self):
        netlist = G.mod_counter(4, 12)
        result = forward_reachability(
            netlist, ForwardReachOptions(max_iterations=2)
        )
        assert result.status is Status.UNKNOWN
        assert result.iterations == 2

    def test_quantify_preset_configurable(self):
        netlist = G.mod_counter(3, 5)
        options = ForwardReachOptions(
            quantify=QuantifyOptions.preset("hash")
        )
        result = forward_reachability(netlist, options)
        assert result.status is Status.PROVED

    def test_verify_dispatch(self):
        result = verify(G.mod_counter(3, 6), method="reach_aig_fwd")
        assert result.engine == "reach_aig_fwd"
        assert result.status is Status.PROVED

    def test_stats_record_frontier_series(self):
        result = forward_reachability(G.mod_counter(3, 6))
        assert "frontier_size_1" in result.stats
        assert result.stats.get("peak_frontier_size") > 0


class TestImmediateViolation:
    def test_initial_state_violation(self):
        from repro.circuits.netlist import Netlist

        netlist = Netlist("bad_init")
        latch = netlist.add_latch("l", init=True)
        netlist.set_next(latch, latch)
        netlist.set_property(latch ^ 1)  # NOT l: false initially
        result = forward_reachability(netlist)
        assert result.status is Status.FAILED
        assert result.trace.depth == 0

    def test_input_dependent_property(self):
        from repro.aig.graph import edge_not
        from repro.circuits.netlist import Netlist

        netlist = Netlist("input_prop")
        grant = netlist.add_input("grant")
        latch = netlist.add_latch("armed", init=False)
        netlist.set_next(latch, grant)
        # Property: never (armed AND grant) — fails at depth 1.
        netlist.set_property(
            edge_not(netlist.aig.and_(latch, grant))
        )
        result = forward_reachability(netlist)
        assert result.status is Status.FAILED
        assert result.trace.validate(netlist)
        assert result.trace.violation_inputs is not None
