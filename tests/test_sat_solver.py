"""Unit and property tests for the CDCL solver.

The CDCL engine is cross-checked against brute-force enumeration and the
reference DPLL solver on random formulas, and exercised on structured
instances (pigeonhole, parity chains) that stress conflict analysis.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat import CNF, DpllSolver, Solver, SolveResult
from repro.sat.dpll import brute_force_models


def random_cnf(rng, max_vars=8, max_clauses=32):
    n = rng.randint(1, max_vars)
    m = rng.randint(1, max_clauses)
    f = CNF(n)
    for _ in range(m):
        width = min(rng.randint(1, 3), n)
        variables = rng.sample(range(1, n + 1), width)
        f.add_clause(rng.choice([v, -v]) for v in variables)
    return f


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve() is SolveResult.SAT

    def test_unit_clause(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve() is SolveResult.SAT
        assert s.value(a)

    def test_contradicting_units(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.add_clause([-a])
        assert s.solve() is SolveResult.UNSAT

    def test_tautology_ignored(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a, -a])
        assert s.solve() is SolveResult.SAT

    def test_duplicate_literals_collapse(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a, a, a])
        assert s.solve() is SolveResult.SAT
        assert s.value(a)

    def test_model_satisfies_formula(self):
        f = CNF()
        f.extend([[1, 2, 3], [-1, -2], [-2, -3], [2]])
        s = Solver(f)
        assert s.solve() is SolveResult.SAT
        assert f.evaluate(s.model)

    def test_value_out_of_range(self):
        s = Solver()
        s.new_var()
        s.add_clause([1])
        s.solve()
        with pytest.raises(SatError):
            s.value(7)

    def test_model_unavailable_after_unsat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        s.solve()
        with pytest.raises(SatError):
            _ = s.model

    def test_lit_true_helper(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([-a])
        assert s.solve() is SolveResult.SAT
        assert s.lit_true(-a)
        assert not s.lit_true(a)

    def test_solve_result_truthiness(self):
        assert bool(SolveResult.SAT)
        assert not bool(SolveResult.UNSAT)
        assert not bool(SolveResult.UNKNOWN)

    def test_add_clause_rejected_mid_search(self):
        # Clauses are only legal at level 0; the public API always returns
        # there, so this can only be triggered through private state.
        s = Solver()
        s.new_var()
        s._trail_lim.append(0)
        with pytest.raises(SatError):
            s.add_clause([1])
        s._trail_lim.clear()

    def test_stats_populated(self):
        f = CNF()
        f.extend([[1, 2], [-1, 2], [1, -2], [-1, -2, 3]])
        s = Solver(f)
        s.solve()
        stats = s.stats()
        assert stats["solve_calls"] == 1
        assert stats["vars"] == 3


class TestAssumptions:
    def make(self):
        s = Solver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, c])
        return s, a, b, c

    def test_sat_under_assumptions(self):
        s, a, b, c = self.make()
        assert s.solve([-b]) is SolveResult.SAT
        assert s.value(a) and s.value(c)

    def test_unsat_under_assumptions_db_untouched(self):
        s, a, b, c = self.make()
        assert s.solve([a, -c]) is SolveResult.UNSAT
        assert s.solve() is SolveResult.SAT

    def test_failed_assumptions_subset(self):
        s, a, b, c = self.make()
        s.solve([a, -c, b])
        failed = set(s.failed_assumptions)
        assert failed <= {a, -c, b}
        assert failed  # non-empty

    def test_failed_assumptions_are_a_core(self):
        # Re-solving with just the failed subset must still be UNSAT.
        s, a, b, c = self.make()
        s.solve([b, a, -c])
        core = s.failed_assumptions
        assert s.solve(core) is SolveResult.UNSAT

    def test_assumption_on_fresh_var(self):
        s = Solver()
        assert s.solve([5]) is SolveResult.SAT
        assert s.value(5)

    def test_many_sequential_checks_share_learning(self):
        # The factorized-checks workflow from the paper: one database,
        # many assumption probes.
        s = Solver()
        variables = [s.new_var() for _ in range(6)]
        for x, y in zip(variables, variables[1:]):
            s.add_clause([-x, y])  # chain of implications
        for var in variables[1:]:
            assert s.solve([variables[0], -var]) is SolveResult.UNSAT
        assert s.solve([variables[0]]) is SolveResult.SAT
        assert all(s.value(v) for v in variables)


class TestStructuredInstances:
    def pigeonhole(self, holes):
        """PHP(holes+1, holes): UNSAT, classic resolution-hard family."""
        f = CNF()
        pigeons = holes + 1
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = f.new_var()
        for p in range(pigeons):
            f.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    f.add_clause([-var[p1, h], -var[p2, h]])
        return f

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        assert Solver(self.pigeonhole(holes)).solve() is SolveResult.UNSAT

    def test_parity_chain_sat(self):
        # x1 xor x2 xor ... xor xn = 1 encoded via chain variables.
        f = CNF()
        n = 10
        xs = f.new_vars(n)
        acc = xs[0]
        for x in xs[1:]:
            nxt = f.new_var()
            # nxt = acc xor x
            f.add_clause([-nxt, acc, x])
            f.add_clause([-nxt, -acc, -x])
            f.add_clause([nxt, -acc, x])
            f.add_clause([nxt, acc, -x])
            acc = nxt
        f.add_clause([acc])
        s = Solver(f)
        assert s.solve() is SolveResult.SAT
        assert sum(s.value(x) for x in xs) % 2 == 1

    def test_conflict_budget_unknown(self):
        f = self.pigeonhole(6)
        s = Solver(f)
        assert s.solve(conflict_budget=5) is SolveResult.UNKNOWN

    def test_budget_then_full_solve(self):
        f = self.pigeonhole(4)
        s = Solver(f)
        first = s.solve(conflict_budget=3)
        assert first in (SolveResult.UNKNOWN, SolveResult.UNSAT)
        assert s.solve() is SolveResult.UNSAT


class TestRandomAgainstOracles:
    def test_against_brute_force(self):
        rng = random.Random(42)
        for _ in range(150):
            f = random_cnf(rng)
            expected = bool(brute_force_models(f))
            s = Solver(f)
            result = s.solve()
            assert (result is SolveResult.SAT) == expected
            if expected:
                assert f.evaluate(s.model)

    def test_against_dpll(self):
        rng = random.Random(7)
        for _ in range(100):
            f = random_cnf(rng, max_vars=10, max_clauses=40)
            assert (Solver(f).solve() is SolveResult.SAT) == DpllSolver(f).solve()

    def test_incremental_equals_monolithic(self):
        rng = random.Random(3)
        for _ in range(30):
            f = random_cnf(rng, max_vars=7, max_clauses=25)
            s = Solver()
            verdicts = []
            for clause in f:
                s.add_clause(clause)
                verdicts.append(s.solve() is SolveResult.SAT)
            # Monotone: once UNSAT, stays UNSAT.
            if False in verdicts:
                first_false = verdicts.index(False)
                assert all(not v for v in verdicts[first_false:])
            # Final verdict matches a fresh solve.
            assert verdicts[-1] == (Solver(f).solve() is SolveResult.SAT)


@st.composite
def cnf_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    clause = st.lists(
        st.integers(min_value=1, max_value=n).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    )
    clauses = draw(st.lists(clause, max_size=15))
    f = CNF(n)
    for c in clauses:
        f.add_clause(c)
    return f


@settings(max_examples=60, deadline=None)
@given(cnf_strategy())
def test_cdcl_matches_brute_force_property(f):
    expected = bool(brute_force_models(f))
    s = Solver(f)
    assert (s.solve() is SolveResult.SAT) == expected
    if expected:
        assert f.evaluate(s.model)


@settings(max_examples=40, deadline=None)
@given(cnf_strategy(), st.lists(st.integers(min_value=1, max_value=6), max_size=3))
def test_assumptions_equal_added_units_property(f, assume_vars):
    assumptions = [v if v % 2 else -v for v in assume_vars]
    s = Solver(f)
    under_assumptions = s.solve(assumptions) is SolveResult.SAT
    g = f.copy()
    for lit in assumptions:
        g.add_clause([lit])
    monolithic = Solver(g).solve() is SolveResult.SAT
    assert under_assumptions == monolithic


class TestPhaseSaving:
    """The cached-polarity heuristic is explicit and controllable.

    Phase saving re-uses the polarity of the last unwound assignment on
    the next branch; ``Solver(phase_saving=False)`` freezes polarities
    instead.  The flag must change nothing but branching polarity: both
    settings agree on every verdict, and the default is exactly the
    always-saving solver the incremental engines were built against.
    """

    def test_default_is_stats_identical_to_explicit_enable(self):
        # The flag's plumbing must not perturb the search: the default
        # and phase_saving=True runs are the same search, conflict for
        # conflict, across an incremental multi-call workload.
        rng = random.Random(11)
        f = random_cnf(rng, max_vars=10, max_clauses=60)
        default, explicit = Solver(f), Solver(f, phase_saving=True)
        for solver in (default, explicit):
            solver.solve()
            solver.solve(assumptions=[1, -2])
            solver.add_clause([-1, 3])
            solver.solve()
        assert default.stats() == explicit.stats()

    def test_disabled_still_sound_on_random_battery(self):
        for seed in range(25):
            rng = random.Random(seed)
            f = random_cnf(rng)
            expected = bool(brute_force_models(f))
            s = Solver(f, phase_saving=False)
            assert (s.solve() is SolveResult.SAT) == expected, seed
            if expected:
                assert f.evaluate(s.model)
            # Incremental follow-up under assumptions agrees with a
            # monolithic solve either way.
            assert (
                s.solve(assumptions=[1]) is SolveResult.SAT
            ) == any(m[0] for m in brute_force_models(f)), seed

    def test_saved_phases_steer_the_next_model(self):
        # One satisfiable clause over two free variables: the first
        # solve (under assumptions) assigns both true; with phase saving
        # the free re-solve re-finds that model, without it the solver
        # falls back to its false-first default.
        saving, frozen = Solver(), Solver(phase_saving=False)
        for s in (saving, frozen):
            a, b = s.new_var(), s.new_var()
            s.add_clause([a, b])
            assert s.solve(assumptions=[a, b]) is SolveResult.SAT
            assert s.solve() is SolveResult.SAT
        assert saving.value(1) and saving.value(2)
        # The frozen solver branches false-first, so at most one of the
        # two free variables ends up true (whichever propagation forces).
        assert not (frozen.value(1) and frozen.value(2))

    def test_set_polarity_pins_the_branch(self):
        s = Solver(phase_saving=False)
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.set_polarity(a, True)
        assert s.solve() is SolveResult.SAT
        assert s.value(a)
        with pytest.raises(SatError):
            s.set_polarity(99, True)

    def test_disabled_solver_is_deterministic(self):
        rng = random.Random(5)
        f = random_cnf(rng, max_vars=10, max_clauses=60)
        first, second = Solver(f, phase_saving=False), Solver(
            f, phase_saving=False
        )
        for s in (first, second):
            s.solve()
            s.solve(assumptions=[-1])
            s.solve()
        assert first.stats() == second.stats()


class TestRemovableClauses:
    """The activation-literal lifecycle behind PDR's lemma databases."""

    def test_clause_inactive_without_assumption(self):
        s = Solver()
        a = s.new_var()
        act = s.add_removable_clause([-a])
        s.add_clause([a])
        assert s.solve() is SolveResult.SAT          # clause dormant
        assert s.solve(assumptions=[act]) is SolveResult.UNSAT
        assert act in (s.core or ())

    def test_retire_disables_permanently(self):
        s = Solver()
        a = s.new_var()
        act = s.add_removable_clause([-a])
        s.add_clause([a])
        assert s.solve(assumptions=[act]) is SolveResult.UNSAT
        s.retire_clause(act)
        # The activation literal is pinned false now; the clause can
        # never constrain anything again.
        assert s.solve() is SolveResult.SAT
        assert s.value(a)

    def test_many_active_lemmas_compose(self):
        s = Solver()
        xs = [s.new_var() for _ in range(6)]
        acts = [s.add_removable_clause([-x]) for x in xs]
        s.add_clause(xs)                              # at least one true
        assert s.solve(assumptions=acts) is SolveResult.UNSAT
        # Retiring any one lemma opens exactly that variable.
        s.retire_clause(acts[3])
        live = acts[:3] + acts[4:]
        assert s.solve(assumptions=live) is SolveResult.SAT
        assert s.value(xs[3])

    def test_falsified_removable_clause_reports_its_activation(self):
        # A removable clause whose body is already dead at level 0 must
        # not fail at add time; assuming it yields UNSAT with the
        # activation literal in the core.
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        act = s.add_removable_clause([-a])
        assert s.solve(assumptions=[act]) is SolveResult.UNSAT
        assert s.core == (act,)
        assert s.solve() is SolveResult.SAT
