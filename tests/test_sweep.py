"""Tests for the merge-phase engines: signatures, SAT sweep, BDD sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import and_all, or_, xor
from repro.aig.simulate import truth_table
from repro.sweep.bddsweep import bdd_sweep
from repro.sweep.engine import sweep_edges
from repro.sweep.satsweep import SatSweeper, prove_edges_equivalent
from repro.sweep.signatures import SignatureTable
from tests.conftest import build_random_aig


class TestSignatureTable:
    def test_equal_nodes_share_key(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = or_(aig, aig.and_(a, b), aig.and_(a, c))   # a(b|c)
        g = aig.and_(a, or_(aig, b, c))                # same function
        table = SignatureTable(aig, [f, g], words=4)
        key_f = table.signature_key(f >> 1)
        key_g = table.signature_key(g >> 1)
        assert key_f[1] == key_g[1]

    def test_distinct_functions_usually_split(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = or_(aig, a, b)
        table = SignatureTable(aig, [f, g], words=4)
        assert table.signature_key(f >> 1)[1] != table.signature_key(g >> 1)[1]

    def test_counterexample_refines(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = aig.and_(a, edge_not(b))
        table = SignatureTable(aig, [f, g], words=1, seed=0)
        # Force both signatures equal is unlikely, but adding a
        # distinguishing pattern must split them regardless.
        table.add_pattern({a >> 1: True, b >> 1: True})
        table.flush()
        assert not table.edges_may_be_equal(f, g)

    def test_freeze_defers_flush(self):
        aig = Aig()
        a = aig.add_input()
        table = SignatureTable(aig, [a], words=1)
        table.freeze()
        words_before = table.words
        for k in range(70):  # more than one word worth of patterns
            table.add_pattern({a >> 1: bool(k % 2)})
        assert table.words == words_before
        table.thaw()
        assert table.words > words_before

    def test_constant_candidate(self):
        aig = Aig()
        a = aig.add_input()
        f = aig.and_(a, edge_not(a))  # folds to FALSE edge, node 0 sig zero
        table = SignatureTable(aig, [a], words=2)
        assert table.is_candidate_constant(0) is False  # constant node is 0

    def test_refresh_roots_adds_inputs(self):
        aig = Aig()
        a = aig.add_input()
        table = SignatureTable(aig, [a], words=2)
        b = aig.add_input()
        g = aig.and_(a, b)
        table.refresh_roots([g])
        assert table.node_signature(g >> 1) is not None


class TestProveEquivalent:
    def test_equivalent_pair(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = or_(aig, aig.and_(a, b), aig.and_(a, c))
        g = aig.and_(a, or_(aig, b, c))
        verdict, cex = prove_edges_equivalent(aig, f, g)
        assert verdict is True and cex is None

    def test_different_pair_with_counterexample(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = or_(aig, a, b)
        verdict, cex = prove_edges_equivalent(aig, f, g)
        assert verdict is False
        assert cex is not None
        from repro.aig.simulate import eval_edge

        assert eval_edge(aig, f, cex) != eval_edge(aig, g, cex)

    def test_same_edge_trivial(self):
        aig = Aig()
        a = aig.add_input()
        assert prove_edges_equivalent(aig, a, a) == (True, None)

    def test_antivalent_pair(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        verdict, _ = prove_edges_equivalent(aig, f, edge_not(f))
        assert verdict is False


class TestSatSweeper:
    def test_sweep_preserves_function(self):
        for seed in range(10):
            aig, inputs, root = build_random_aig(5, 30, seed=seed)
            nodes = [e >> 1 for e in inputs]
            before = truth_table(aig, root, nodes)
            sweeper = SatSweeper(aig)
            [swept], rebuilt = sweeper.sweep([root])
            assert truth_table(aig, swept, nodes) == before

    def test_sweep_never_grows(self):
        for seed in range(10):
            aig, inputs, root = build_random_aig(5, 40, seed=seed + 50)
            sweeper = SatSweeper(aig)
            [swept], _ = sweeper.sweep([root])
            assert aig.cone_and_count(swept) <= aig.cone_and_count(root)

    def test_sweep_merges_redundant_logic(self):
        # Build f twice with different structure; sweeping should share.
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f1 = or_(aig, aig.and_(a, b), aig.and_(a, c))
        f2 = aig.and_(a, or_(aig, b, c))
        miter = xor(aig, f1, f2)  # constant false, sweeping should see it
        sweeper = SatSweeper(aig)
        [swept], _ = sweeper.sweep([miter])
        assert swept == FALSE

    def test_check_equal_learns_counterexamples(self):
        aig, inputs, root = build_random_aig(5, 25, seed=91)
        sweeper = SatSweeper(aig)
        sweeper.signatures = SignatureTable(aig, [root], words=1)
        other = aig.and_(inputs[0], inputs[1])
        verdict = sweeper.check_equal(root, other)
        if verdict is False:
            assert sweeper.stats.get("counterexamples_learned") >= 1

    def test_check_constant(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        tautology = or_(aig, a, edge_not(a))  # folds to TRUE
        assert tautology == TRUE
        f = or_(aig, aig.and_(a, b), edge_not(or_(aig, a, b)))
        sweeper = SatSweeper(aig)
        # f is not constant: (a AND b) OR NOT (a OR b) is 0 on a=1,b=0.
        assert sweeper.check_constant(f, True) is False
        g = or_(aig, f, xor(aig, a, b))  # covers the remaining rows: TRUE
        assert sweeper.check_constant(g, True) is True

    def test_backward_merge_preserves_function(self):
        aig = Aig()
        xs = aig.add_inputs(6)
        shared = and_all(aig, xs[:4])
        f = or_(aig, shared, xs[4])
        g = or_(aig, shared, xs[5])
        sweeper = SatSweeper(aig)
        new_g, merge_map = sweeper.merge_pair_backward(f, g)
        nodes = [e >> 1 for e in xs]
        assert truth_table(aig, new_g, nodes) == truth_table(aig, g, nodes)

    def test_backward_merge_on_identical_cones_stops_at_root(self):
        aig = Aig()
        xs = aig.add_inputs(4)
        f = and_all(aig, xs)
        # g structurally identical -> hashing gives the same edge; backward
        # merge must early-out with no SAT checks.
        g = and_all(aig, list(xs))
        sweeper = SatSweeper(aig)
        new_g, merge_map = sweeper.merge_pair_backward(f, g)
        assert new_g == g == f
        assert sweeper.stats.get("sat_checks", 0) == 0


class TestBddSweep:
    def test_preserves_function(self):
        for seed in range(10):
            aig, inputs, root = build_random_aig(5, 30, seed=seed + 200)
            nodes = [e >> 1 for e in inputs]
            before = truth_table(aig, root, nodes)
            [swept], rebuilt, stats = bdd_sweep(aig, [root])
            assert truth_table(aig, swept, nodes) == before

    def test_merges_structurally_distinct_equivalents(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f1 = or_(aig, aig.and_(a, b), aig.and_(a, c))
        f2 = aig.and_(a, or_(aig, b, c))
        [s1, s2], rebuilt, stats = bdd_sweep(aig, [f1, f2])
        assert s1 == s2
        assert stats.get("bdd_merges") >= 1

    def test_cut_points_on_tiny_budget(self):
        aig = Aig()
        xs = aig.add_inputs(10)
        acc = FALSE
        for x in xs:
            acc = xor(aig, acc, x)
        [swept], rebuilt, stats = bdd_sweep(aig, [acc], node_limit=8)
        nodes = [e >> 1 for e in xs]
        assert truth_table(aig, swept, nodes) == truth_table(aig, acc, nodes)
        assert stats.get("cut_points") >= 1

    def test_antivalent_nodes_merge_with_complement(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = edge_not(or_(aig, edge_not(a), edge_not(b)))  # same node by hash
        # Build a structurally distinct antivalent pair instead:
        h = or_(aig, edge_not(a), edge_not(b))
        [sf, sh], rebuilt, stats = bdd_sweep(aig, [f, h])
        assert sf == edge_not(sh)


class TestSweepFacade:
    def test_pipeline_combinations(self):
        aig, inputs, root = build_random_aig(5, 35, seed=300)
        nodes = [e >> 1 for e in inputs]
        reference = truth_table(aig, root, nodes)
        for use_bdd in (False, True):
            for use_sat in (False, True):
                result = sweep_edges(
                    aig, [root], use_bdd=use_bdd, use_sat=use_sat
                )
                assert truth_table(aig, result.edges[0], nodes) == reference

    def test_stats_populated(self):
        aig, inputs, root = build_random_aig(5, 35, seed=301)
        result = sweep_edges(aig, [root])
        assert "bdd_nodes" in result.stats


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sweep_function_preservation_property(seed):
    aig, inputs, root = build_random_aig(4, 22, seed=seed)
    nodes = [e >> 1 for e in inputs]
    reference = truth_table(aig, root, nodes)
    sweeper = SatSweeper(aig)
    [swept], _ = sweeper.sweep([root])
    assert truth_table(aig, swept, nodes) == reference
    [bdd_swept], _, _ = bdd_sweep(aig, [root], node_limit=200)
    assert truth_table(aig, bdd_swept, nodes) == reference
