"""Tests for cut enumeration and truth-table rewriting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.cuts import cut_cone, cut_truth_table, enumerate_cuts
from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import ite, or_, xor
from repro.aig.rewrite import rewrite_root, synthesize_from_truth_table
from repro.aig.simulate import truth_table
from tests.conftest import build_random_aig


class TestCuts:
    def test_trivial_cut_always_present(self):
        aig, inputs, root = build_random_aig(4, 15, seed=31)
        cuts = enumerate_cuts(aig, [root], k=4)
        for node, node_cuts in cuts.items():
            if node != 0:
                assert frozenset((node,)) in node_cuts

    def test_cut_width_bounded(self):
        aig, inputs, root = build_random_aig(6, 40, seed=32)
        cuts = enumerate_cuts(aig, [root], k=3)
        for node_cuts in cuts.values():
            for cut in node_cuts:
                assert len(cut) <= 3

    def test_cut_count_bounded(self):
        aig, inputs, root = build_random_aig(6, 40, seed=33)
        cuts = enumerate_cuts(aig, [root], k=4, max_cuts_per_node=5)
        for node_cuts in cuts.values():
            assert len(node_cuts) <= 5

    def test_input_cuts_trivial_only(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        cuts = enumerate_cuts(aig, [f])
        assert cuts[a >> 1] == [frozenset((a >> 1,))]

    def test_cut_cone_between_leaves_and_node(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        inner = aig.and_(a, b)
        root = aig.and_(inner, c)
        cone = cut_cone(
            aig, root >> 1, frozenset((a >> 1, b >> 1, c >> 1))
        )
        assert set(cone) == {inner >> 1, root >> 1}

    def test_cut_cone_of_leaf_empty(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        assert cut_cone(aig, a >> 1, frozenset((a >> 1,))) == []

    def test_cut_truth_table_matches_global(self):
        aig, inputs, root = build_random_aig(4, 20, seed=34)
        input_nodes = [e >> 1 for e in inputs]
        # The cut of all inputs reproduces the global truth table.
        cut = frozenset(
            n for n in input_nodes
            if n in set(aig.cone([root]))
        )
        if not cut or (root >> 1) in cut:
            pytest.skip("degenerate random instance")
        mask, leaves = cut_truth_table(aig, root >> 1, cut)
        global_mask = truth_table(aig, 2 * (root >> 1), leaves)
        assert mask == global_mask


class TestSynthesis:
    def test_all_three_variable_functions(self):
        aig = Aig()
        xs = aig.add_inputs(3)
        cache = {}
        for mask in range(256):
            edge = synthesize_from_truth_table(aig, mask, list(xs), cache)
            assert truth_table(aig, edge, [x >> 1 for x in xs]) == mask

    def test_constants(self):
        aig = Aig()
        xs = aig.add_inputs(2)
        assert synthesize_from_truth_table(aig, 0, list(xs)) == FALSE
        assert synthesize_from_truth_table(aig, 0b1111, list(xs)) == TRUE

    def test_single_variable(self):
        aig = Aig()
        (x,) = aig.add_inputs(1)
        assert synthesize_from_truth_table(aig, 0b10, [x]) == x
        assert synthesize_from_truth_table(aig, 0b01, [x]) == edge_not(x)

    def test_over_complemented_leaves(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        edge = synthesize_from_truth_table(
            aig, 0b1000, [edge_not(a), b]
        )  # "leaf0 AND leaf1" with leaf0 = NOT a
        assert truth_table(aig, edge, [a >> 1, b >> 1]) == 0b0100


class TestRewrite:
    def test_function_preserved(self):
        for seed in range(15):
            aig, inputs, root = build_random_aig(4, 25, seed=seed)
            nodes = [e >> 1 for e in inputs]
            before = truth_table(aig, root, nodes)
            new_root = rewrite_root(aig, root)
            assert truth_table(aig, new_root, nodes) == before

    def test_never_grows(self):
        for seed in range(15):
            aig, inputs, root = build_random_aig(5, 35, seed=seed + 100)
            new_root = rewrite_root(aig, root)
            assert aig.cone_and_count(new_root) <= aig.cone_and_count(root)

    def test_redundant_mux_collapses(self):
        # ite(a, f, f) should collapse to f.
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(b, c)
        redundant = or_(aig, aig.and_(a, f), aig.and_(edge_not(a), f))
        new_root = rewrite_root(aig, redundant)
        assert aig.cone_and_count(new_root) <= aig.cone_and_count(f)

    def test_constant_root(self):
        aig = Aig()
        aig.add_inputs(2)
        assert rewrite_root(aig, TRUE) == TRUE
        assert rewrite_root(aig, FALSE) == FALSE


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rewrite_property(seed):
    aig, inputs, root = build_random_aig(4, 20, seed=seed)
    nodes = [e >> 1 for e in inputs]
    new_root = rewrite_root(aig, root)
    assert truth_table(aig, new_root, nodes) == truth_table(aig, root, nodes)
    assert aig.cone_and_count(new_root) <= aig.cone_and_count(root)
