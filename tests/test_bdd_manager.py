"""Tests for the ROBDD manager: canonicity, algebra, quantification."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDD_FALSE, BDD_TRUE, BddManager
from repro.errors import BddError, BddLimitExceeded


def exhaustive(manager, node, num_vars):
    """Truth table of a BDD as a set of satisfying tuples."""
    rows = set()
    for values in itertools.product([False, True], repeat=num_vars):
        if manager.evaluate(node, dict(enumerate(values))):
            rows.add(values)
    return rows


class TestBasics:
    def test_terminals(self):
        mgr = BddManager()
        assert not mgr.evaluate(BDD_FALSE, {})
        assert mgr.evaluate(BDD_TRUE, {})

    def test_variable_node(self):
        mgr = BddManager()
        x = mgr.new_var("x")
        assert mgr.evaluate(x, {0: True})
        assert not mgr.evaluate(x, {0: False})

    def test_var_node_lookup(self):
        mgr = BddManager()
        x = mgr.new_var()
        assert mgr.var_node(0) == x
        with pytest.raises(BddError):
            mgr.var_node(5)

    def test_var_of_terminal_rejected(self):
        mgr = BddManager()
        with pytest.raises(BddError):
            mgr.var_of(BDD_TRUE)

    def test_canonicity(self):
        # Same function built two ways yields the same node id.
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        via_and = mgr.and_(x, y)
        via_ite = mgr.ite(x, y, BDD_FALSE)
        de_morgan = mgr.not_(mgr.or_(mgr.not_(x), mgr.not_(y)))
        assert via_and == via_ite == de_morgan

    def test_double_negation(self):
        mgr = BddManager()
        x = mgr.new_var()
        assert mgr.not_(mgr.not_(x)) == x


class TestAlgebra:
    def setup_method(self):
        self.mgr = BddManager()
        self.x = self.mgr.new_var()
        self.y = self.mgr.new_var()
        self.z = self.mgr.new_var()

    def check(self, node, reference):
        for values in itertools.product([False, True], repeat=3):
            got = self.mgr.evaluate(node, dict(enumerate(values)))
            assert got == reference(*values)

    def test_and(self):
        self.check(self.mgr.and_(self.x, self.y), lambda x, y, z: x and y)

    def test_or(self):
        self.check(self.mgr.or_(self.x, self.z), lambda x, y, z: x or z)

    def test_xor(self):
        self.check(self.mgr.xor(self.x, self.y), lambda x, y, z: x != y)

    def test_xnor(self):
        self.check(self.mgr.xnor(self.x, self.y), lambda x, y, z: x == y)

    def test_implies(self):
        self.check(
            self.mgr.implies(self.x, self.y), lambda x, y, z: (not x) or y
        )

    def test_ite(self):
        self.check(
            self.mgr.ite(self.x, self.y, self.z),
            lambda x, y, z: y if x else z,
        )

    def test_and_all_short_circuit(self):
        assert self.mgr.and_all([self.x, BDD_FALSE, self.y]) == BDD_FALSE

    def test_or_all_short_circuit(self):
        assert self.mgr.or_all([self.x, BDD_TRUE]) == BDD_TRUE


class TestQuantificationAndCompose:
    def setup_method(self):
        self.mgr = BddManager()
        self.x = self.mgr.new_var()
        self.y = self.mgr.new_var()
        self.z = self.mgr.new_var()

    def test_exists(self):
        f = self.mgr.and_(self.x, self.y)
        assert self.mgr.exists(f, [1]) == self.x

    def test_exists_multiple(self):
        f = self.mgr.and_(self.mgr.and_(self.x, self.y), self.z)
        assert self.mgr.exists(f, [0, 2]) == self.y

    def test_exists_unsat_stays_false(self):
        assert self.mgr.exists(BDD_FALSE, [0, 1]) == BDD_FALSE

    def test_forall(self):
        f = self.mgr.or_(self.x, self.y)
        # forall y . x OR y  ==  x
        assert self.mgr.forall(f, [1]) == self.x

    def test_exists_forall_duality(self):
        f = self.mgr.ite(self.x, self.y, self.mgr.not_(self.z))
        lhs = self.mgr.forall(f, [0])
        rhs = self.mgr.not_(self.mgr.exists(self.mgr.not_(f), [0]))
        assert lhs == rhs

    def test_restrict(self):
        f = self.mgr.ite(self.x, self.y, self.z)
        assert self.mgr.restrict(f, 0, True) == self.y
        assert self.mgr.restrict(f, 0, False) == self.z

    def test_compose_substitutes_function(self):
        f = self.mgr.and_(self.x, self.y)
        g = self.mgr.compose(f, {0: self.mgr.or_(self.y, self.z)})
        expected = exhaustive(
            self.mgr, self.mgr.and_(self.mgr.or_(self.y, self.z), self.y), 3
        )
        assert exhaustive(self.mgr, g, 3) == expected

    def test_compose_is_simultaneous(self):
        f = self.mgr.and_(self.x, self.mgr.not_(self.y))
        swapped = self.mgr.compose(f, {0: self.y, 1: self.x})
        expected = exhaustive(
            self.mgr, self.mgr.and_(self.y, self.mgr.not_(self.x)), 3
        )
        assert exhaustive(self.mgr, swapped, 3) == expected

    def test_rename(self):
        f = self.mgr.and_(self.x, self.y)
        renamed = self.mgr.rename(f, {0: 2})
        expected = exhaustive(self.mgr, self.mgr.and_(self.z, self.y), 3)
        assert exhaustive(self.mgr, renamed, 3) == expected


class TestCountsAndCubes:
    def test_sat_count(self):
        mgr = BddManager()
        x, y, z = mgr.new_var(), mgr.new_var(), mgr.new_var()
        f = mgr.or_(mgr.and_(x, y), mgr.and_(mgr.not_(x), z))
        expected = sum(
            1
            for vals in itertools.product([False, True], repeat=3)
            if (vals[0] and vals[1]) or ((not vals[0]) and vals[2])
        )
        assert mgr.sat_count(f, 3) == expected

    def test_sat_count_terminals(self):
        mgr = BddManager()
        mgr.new_var(), mgr.new_var()
        assert mgr.sat_count(BDD_TRUE, 2) == 4
        assert mgr.sat_count(BDD_FALSE, 2) == 0

    def test_sat_count_variable(self):
        mgr = BddManager()
        x = mgr.new_var()
        mgr.new_var()
        mgr.new_var()
        assert mgr.sat_count(x, 3) == 4

    def test_pick_cube_satisfies(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        f = mgr.xor(x, y)
        cube = mgr.pick_cube(f)
        assert cube is not None
        assert mgr.evaluate(f, cube)

    def test_pick_cube_of_false(self):
        assert BddManager().pick_cube(BDD_FALSE) is None

    def test_cube_builder(self):
        mgr = BddManager()
        mgr.new_var(), mgr.new_var(), mgr.new_var()
        cube = mgr.cube({0: True, 2: False})
        assert mgr.evaluate(cube, {0: True, 1: False, 2: False})
        assert not mgr.evaluate(cube, {0: True, 1: False, 2: True})

    def test_support(self):
        mgr = BddManager()
        x, y, z = mgr.new_var(), mgr.new_var(), mgr.new_var()
        f = mgr.and_(x, z)
        assert mgr.support(f) == {0, 2}

    def test_size(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        f = mgr.and_(x, y)
        assert mgr.size(f) == 2
        assert mgr.size(BDD_TRUE) == 0


class TestNodeLimit:
    def test_limit_enforced(self):
        mgr = BddManager(max_nodes=8)
        variables = []
        with pytest.raises(BddLimitExceeded):
            for _ in range(10):
                variables.append(mgr.new_var())
                if len(variables) >= 2:
                    mgr.xor(variables[-1], variables[-2])

    def test_no_limit_by_default(self):
        mgr = BddManager()
        acc = BDD_FALSE
        for _ in range(10):
            acc = mgr.xor(acc, mgr.new_var())
        assert mgr.num_nodes > 10


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["and", "or", "xor", "not"]),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_bdd_matches_python_semantics_property(ops):
    """Random op DAGs over 3 variables match direct Python evaluation."""
    mgr = BddManager()
    xs = [mgr.new_var() for _ in range(3)]
    pool = list(xs)
    fns = [lambda v, i=i: v[i] for i in range(3)]
    for op, i, j in ops:
        a = pool[i % len(pool)]
        fa = fns[i % len(fns)]
        b = pool[j % len(pool)]
        fb = fns[j % len(fns)]
        if op == "and":
            pool.append(mgr.and_(a, b))
            fns.append(lambda v, fa=fa, fb=fb: fa(v) and fb(v))
        elif op == "or":
            pool.append(mgr.or_(a, b))
            fns.append(lambda v, fa=fa, fb=fb: fa(v) or fb(v))
        elif op == "xor":
            pool.append(mgr.xor(a, b))
            fns.append(lambda v, fa=fa, fb=fb: fa(v) != fb(v))
        else:
            pool.append(mgr.not_(a))
            fns.append(lambda v, fa=fa: not fa(v))
    root, fn = pool[-1], fns[-1]
    for values in itertools.product([False, True], repeat=3):
        assert mgr.evaluate(root, dict(enumerate(values))) == fn(values)
