"""Tests for the verification service (:mod:`repro.svc`).

Covers the four layers — SQLite store (migrations, namespaces,
content-addressed certificates), durable queue (ordering, leases,
backpressure, bounded attempts), worker loop (verdicts, certificates,
cancellation, fault reporting) and HTTP front — plus the cross-layer
guarantees: crash recovery via SIGKILL, end-to-end durability,
traced-vs-untraced verdict identity, and torn-write safety of the
legacy JSON-lines cache.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import signal
import sqlite3
import time
import urllib.error
import urllib.request

import pytest

from repro.circuits import generators
from repro.circuits.parse import serialize_netlist
from repro.errors import ModelCheckingError, QueueFullError, ServiceError
from repro.mc.result import Status, VerificationResult
from repro.portfolio.cache import ResultCache
from repro.svc import (
    JobState,
    Store,
    TaskQueue,
    VerificationServer,
    Worker,
    worker_main,
)
from repro.svc.store import MIGRATIONS, SCHEMA_VERSION, certificate_id


def safe_counter(width: int = 4, modulus: int = 12):
    return generators.mod_counter(width, modulus)


def safe_text(width: int = 4, modulus: int = 12) -> str:
    return serialize_netlist(safe_counter(width, modulus))


def buggy_text(width: int = 4, modulus: int = 12) -> str:
    return serialize_netlist(
        generators.mod_counter(width, modulus, safe=False)
    )


@pytest.fixture
def store(tmp_path):
    return Store(tmp_path / "svc.sqlite")


def _wait_for(predicate, timeout: float = 15.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------- #
# Store
# ---------------------------------------------------------------------- #


class TestStore:
    def test_fresh_store_is_at_current_schema(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_migrates_v1_database_in_place(self, tmp_path):
        # Build a database as the v1 code level would have left it, then
        # reopen through Store: the v2 suffix (job_events, claim index)
        # must be applied without touching v1 rows.
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        for statement in MIGRATIONS[0]:
            conn.execute(statement)
        conn.execute(
            "INSERT INTO jobs (netlist, method, submitted_at) "
            "VALUES ('x', 'bmc', 1.0)"
        )
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()
        upgraded = Store(path)
        assert upgraded.schema_version == SCHEMA_VERSION
        queue = TaskQueue(upgraded)
        assert len(queue.jobs()) == 1  # v1 data survived
        queue.record_event(1, "migrated", None)  # v2 table exists
        assert queue.events(1)[0]["kind"] == "migrated"

    def test_migrates_v2_database_in_place(self, tmp_path):
        # A v2 database (pre-traces) picks up the traces table and the
        # trace_id/verdict job columns without touching existing rows.
        path = tmp_path / "v2.sqlite"
        conn = sqlite3.connect(path)
        for level in MIGRATIONS[:2]:
            for statement in level:
                conn.execute(statement)
        conn.execute(
            "INSERT INTO jobs (netlist, method, submitted_at) "
            "VALUES ('x', 'bmc', 1.0)"
        )
        conn.execute("PRAGMA user_version=2")
        conn.commit()
        conn.close()
        upgraded = Store(path)
        assert upgraded.schema_version == SCHEMA_VERSION
        job = TaskQueue(upgraded).job(1)
        assert job.trace_id is None and job.verdict is None
        assert upgraded.count_traces() == 0

    def test_traces_are_content_addressed(self, store):
        records = [{"type": "counter", "name": "svc.queue_depth",
                    "t": 0.5, "value": 3, "pid": 1}]
        first = store.put_trace(records, wall_epoch=123.0)
        second = store.put_trace(list(records), wall_epoch=123.0)
        assert first == second
        assert store.count_traces() == 1
        doc = store.get_trace(first)
        assert doc["schema"] == "repro.obs/1"
        assert doc["wall_epoch"] == 123.0
        assert doc["records"] == records
        # Different content, different address.
        assert store.put_trace(records, wall_epoch=124.0) != first
        assert store.count_traces() == 2

    def test_refuses_a_newer_schema(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version=99")
        conn.commit()
        conn.close()
        with pytest.raises(ServiceError, match="newer"):
            Store(path)

    def test_certificates_are_content_addressed(self, store):
        payload = {"format": "positional", "level": 3,
                   "clauses": [[1, -2], [2]]}
        first = store.put_certificate(payload)
        second = store.put_certificate(dict(payload))
        assert first == second == certificate_id(payload)
        assert store.count_certificates() == 1
        assert store.get_certificate(first) == payload

    def test_namespaces_isolate_results(self, store):
        record = {"status": "proved", "engine": "pdr", "iterations": 1,
                  "trace": None, "certificate": None, "stats": {}}
        store.put_result("tenant_a", "h1", "pdr", 50, record)
        assert store.get_result("tenant_a", "h1", "pdr", 50) is not None
        assert store.get_result("tenant_b", "h1", "pdr", 50) is None
        assert store.count_results("tenant_a") == 1
        assert store.count_results("tenant_b") == 0


# ---------------------------------------------------------------------- #
# ResultCache over the store backend
# ---------------------------------------------------------------------- #


class TestStoreBackedResultCache:
    def test_roundtrip_and_cross_process_shape(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        netlist = safe_counter()
        from repro.mc import verify

        result = verify(netlist, method="pdr", max_depth=50)
        assert result.proved and result.certificate is not None
        ResultCache(path).store(netlist, "pdr", 50, result)
        # A fresh cache instance (as another process would build) hits,
        # with the certificate re-attached from the content store.
        fresh = ResultCache(path)
        hit = fresh.lookup(safe_counter(), "pdr", 50)
        assert hit is not None and hit.proved
        assert hit.certificate is not None
        assert hit.certificate.clauses == result.certificate.clauses

    def test_lookup_falls_through_lru_eviction(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        writer = ResultCache(path)
        first, second = safe_counter(4, 12), safe_counter(5, 20)
        unknown = VerificationResult(status=Status.UNKNOWN, engine="bmc")
        writer.store(first, "bmc", 10, unknown)
        writer.store(second, "bmc", 10, unknown)
        tiny = ResultCache(path, max_memory_entries=1)
        assert len(tiny) == 1  # LRU front only held the newest
        assert tiny.lookup(first, "bmc", 10) is not None  # point query
        assert tiny.hits == 1

    def test_namespace_isolation_through_cache(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        netlist = safe_counter()
        result = VerificationResult(status=Status.PROVED, engine="pdr")
        ResultCache(path, namespace="a").store(netlist, "pdr", 50, result)
        assert (
            ResultCache(path, namespace="b").lookup(netlist, "pdr", 50)
            is None
        )
        assert (
            ResultCache(path, namespace="a").lookup(netlist, "pdr", 50)
            is not None
        )

    def test_jsonl_cache_rejects_namespaces(self, tmp_path):
        with pytest.raises(ValueError, match="single-tenant"):
            ResultCache(tmp_path / "cache.jsonl", namespace="tenant")


def _hammer_jsonl(args):
    path, worker_index, records = args
    cache = ResultCache(path)
    netlist = safe_counter()
    for k in range(records):
        result = VerificationResult(status=Status.UNKNOWN, engine="bmc")
        # Fatten the record so a torn write would span buffer boundaries.
        result.stats.set(f"w{worker_index}_k{k}_" + "x" * 256, float(k))
        cache.store(netlist, f"m{worker_index}_{k}", k, result)
    return records


class TestJsonlTornWrites:
    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        # Regression for the buffered-append era: JSON-lines appends
        # from multiple processes could interleave mid-line.  With
        # single-write O_APPEND appends under a lock, every line must
        # parse and every record must arrive.
        path = str(tmp_path / "shared.jsonl")
        workers, records = 4, 40
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            pool.map(
                _hammer_jsonl,
                [(path, index, records) for index in range(workers)],
            )
        lines = pathlib.Path(path).read_text().splitlines()
        assert len(lines) == workers * records
        keys = set()
        for line in lines:
            record = json.loads(line)  # a torn line would explode here
            keys.add((record["method"], record["max_depth"]))
        assert len(keys) == workers * records


# ---------------------------------------------------------------------- #
# Queue
# ---------------------------------------------------------------------- #


class TestQueue:
    def test_priority_then_fifo_ordering(self, store):
        queue = TaskQueue(store)
        low = queue.submit(safe_text(), method="bmc", priority=0)
        high_a = queue.submit(safe_text(), method="bmc", priority=5)
        high_b = queue.submit(safe_text(), method="bmc", priority=5)
        order = [queue.claim("w").job_id for _ in range(3)]
        assert order == [high_a, high_b, low]

    def test_backpressure_rejects_with_retry_after(self, store):
        queue = TaskQueue(store, max_pending=2, retry_after=7.5)
        queue.submit(safe_text(), method="bmc")
        queue.submit(safe_text(), method="bmc")
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(safe_text(), method="bmc")
        assert excinfo.value.retry_after == 7.5
        assert excinfo.value.bound == 2

    def test_unknown_engine_rejected_at_submit(self, store):
        with pytest.raises(ModelCheckingError, match="unknown engine"):
            TaskQueue(store).submit(safe_text(), method="no_such_engine")

    def test_unknown_format_rejected_at_submit(self, store):
        with pytest.raises(ServiceError, match="format"):
            TaskQueue(store).submit(safe_text(), fmt="vhdl")

    def test_lease_expiry_requeues_then_bounds_attempts(self, store):
        queue = TaskQueue(store, lease_seconds=0.05, max_attempts=2)
        job_id = queue.submit(safe_text(), method="bmc")
        assert queue.claim("w1").job_id == job_id
        time.sleep(0.1)
        assert queue.requeue_expired() == [(job_id, "requeued")]
        assert queue.job(job_id).state is JobState.QUEUED
        assert queue.claim("w2").job_id == job_id
        time.sleep(0.1)
        # Second expiry exhausts max_attempts=2: FAILED with a reason.
        assert queue.requeue_expired() == [(job_id, "failed")]
        job = queue.job(job_id)
        assert job.state is JobState.FAILED
        assert "lease expired after 2 attempts" in job.reason

    def test_heartbeat_keeps_the_lease_alive(self, store):
        queue = TaskQueue(store, lease_seconds=0.08)
        job_id = queue.submit(safe_text(), method="bmc")
        queue.claim("w1")
        for _ in range(4):
            time.sleep(0.04)
            assert queue.heartbeat(job_id, "w1")
        assert queue.requeue_expired() == []

    def test_lost_lease_completion_is_discarded(self, store):
        # Worker A claims, stalls past its lease, the job is requeued
        # and B completes it; A's late verdict must not overwrite B's —
        # that is the "no task runs twice to completion" guarantee.
        queue = TaskQueue(store, lease_seconds=0.05)
        job_id = queue.submit(safe_text(), method="bmc")
        queue.claim("wA")
        time.sleep(0.1)
        queue.requeue_expired()
        queue.claim("wB")
        assert queue.complete(job_id, "wB", {"status": "proved"})
        assert not queue.complete(job_id, "wA", {"status": "unknown"})
        assert not queue.heartbeat(job_id, "wA")
        assert queue.job(job_id).result["status"] == "proved"

    def test_cancel_queued_job_is_immediate(self, store):
        queue = TaskQueue(store)
        job_id = queue.submit(safe_text(), method="bmc")
        assert queue.cancel(job_id)
        job = queue.job(job_id)
        assert job.state is JobState.CANCELLED
        assert not queue.cancel(job_id)  # already terminal
        assert queue.claim("w") is None


# ---------------------------------------------------------------------- #
# Worker
# ---------------------------------------------------------------------- #


class TestWorker:
    def test_drains_queue_with_verdicts_and_certificates(self, store):
        queue = TaskQueue(store)
        proved_id = queue.submit(safe_text(), method="pdr", name="safe")
        failed_id = queue.submit(buggy_text(), method="bmc", name="buggy")
        assert Worker(store).run(drain=True) == 2
        proved, failed = queue.job(proved_id), queue.job(failed_id)
        assert proved.state is JobState.DONE
        assert proved.result["status"] == "proved"
        assert proved.result["certificate"] is not None
        assert failed.state is JobState.DONE
        assert failed.result["status"] == "failed"
        assert failed.result["trace"] is not None
        # The session's store-backed cache persisted both verdicts.
        assert store.count_results("") == 2
        kinds = [event["kind"] for event in queue.events(proved_id)]
        assert kinds == ["submitted", "claimed", "task_started",
                        "task_finished", "job_finished"]

    def test_cancellation_lands_between_engine_races(self, store):
        queue = TaskQueue(store)
        job_id = queue.submit(safe_text(), method="pdr")
        # The cancel arrives after the claim (wire-level: flag in the
        # store), and the session's cancel_poll picks it up at the next
        # task boundary.
        worker = Worker(
            store, on_claim=lambda job: queue.cancel(job.job_id)
        )
        worker.run(drain=True)
        job = queue.job(job_id)
        assert job.state is JobState.CANCELLED
        assert job.reason == "cancelled by request"
        assert job.result["status"] == "unknown"

    def test_unparseable_submission_fails_with_reason(self, store):
        queue = TaskQueue(store)
        job_id = queue.submit("this is not a netlist \x00", method="bmc")
        Worker(store).run(drain=True)
        job = queue.job(job_id)
        assert job.state is JobState.FAILED
        assert "does not parse" in job.reason

    def test_tenant_namespaces_share_nothing(self, store):
        queue = TaskQueue(store)
        queue.submit(safe_text(), method="pdr", namespace="a")
        queue.submit(safe_text(), method="pdr", namespace="b")
        Worker(store).run(drain=True)
        assert store.count_results("a") == 1
        assert store.count_results("b") == 1
        assert store.count_results("") == 0


# ---------------------------------------------------------------------- #
# Crash recovery (SIGKILL) and end-to-end durability
# ---------------------------------------------------------------------- #


def _start_stalling_worker(store_path: str) -> multiprocessing.Process:
    """A worker process that claims a job, then stalls holding the lease
    (settle_seconds) — the deterministic stand-in for "SIGKILLed while
    mid-task"."""
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(
        target=worker_main,
        args=(store_path,),
        kwargs={
            "worker_id": "doomed",
            "lease_seconds": 0.4,
            "poll_interval": 0.02,
            "settle_seconds": 120.0,
        },
        daemon=True,
    )
    process.start()
    return process


class TestCrashRecovery:
    def test_sigkilled_worker_lease_expires_and_task_is_requeued_once(
        self, tmp_path
    ):
        store_path = str(tmp_path / "svc.sqlite")
        store = Store(store_path)
        queue = TaskQueue(store, lease_seconds=0.4)
        job_id = queue.submit(safe_text(), method="pdr", name="victim")
        doomed = _start_stalling_worker(store_path)
        try:
            assert _wait_for(
                lambda: queue.job(job_id).state is JobState.RUNNING
            ), "stalling worker never claimed the job"
            os.kill(doomed.pid, signal.SIGKILL)
        finally:
            doomed.join(timeout=5.0)
        job = queue.job(job_id)
        assert job.state is JobState.RUNNING  # the lease outlives the corpse
        assert job.attempts == 1
        time.sleep(0.5)  # let the lease lapse
        assert queue.requeue_expired() == [(job_id, "requeued")]
        # Requeued exactly once: a second sweep finds nothing.
        assert queue.requeue_expired() == []
        assert queue.job(job_id).state is JobState.QUEUED
        # A surviving worker picks it up and finishes it.
        Worker(store, worker_id="survivor").run(drain=True)
        job = queue.job(job_id)
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert [e["kind"] for e in queue.events(job_id)].count(
            "requeued"
        ) == 1
        # The verdict round-trips with its certificate intact: rebuild
        # the result from the stored payload and re-check the invariant
        # on a fresh solver.
        from repro.pdr import check_certificate

        netlist = safe_counter()
        result = VerificationResult.from_dict(job.result, netlist)
        assert result.proved and result.certificate is not None
        check_certificate(netlist, result.certificate)  # raises if bogus

    def test_end_to_end_durability(self, tmp_path):
        # The acceptance gate: submit N tasks, SIGKILL a worker mid-run,
        # restart workers against the same store; every task reaches a
        # conclusive verdict, none is lost, none runs twice to
        # completion, and cached PROVED results re-serve in <50ms.
        store_path = str(tmp_path / "svc.sqlite")
        store = Store(store_path)
        queue = TaskQueue(store, lease_seconds=0.4)
        expected = {
            queue.submit(safe_text(4, 12), method="pdr"): "proved",
            queue.submit(safe_text(5, 20), method="pdr"): "proved",
            queue.submit(buggy_text(4, 12), method="bmc"): "failed",
            queue.submit(buggy_text(5, 20), method="bmc"): "failed",
        }
        doomed = _start_stalling_worker(store_path)
        try:
            assert _wait_for(lambda: queue.active_leases() > 0)
            os.kill(doomed.pid, signal.SIGKILL)
        finally:
            doomed.join(timeout=5.0)
        time.sleep(0.5)
        # "Restart workers against the same store": two fresh processes.
        ctx = multiprocessing.get_context("fork")
        fleet = [
            ctx.Process(
                target=worker_main,
                args=(store_path,),
                kwargs={
                    "worker_id": f"restart-{index}",
                    "lease_seconds": 10.0,
                    "poll_interval": 0.02,
                    "drain": True,
                },
                daemon=True,
            )
            for index in range(2)
        ]
        for process in fleet:
            process.start()
        for process in fleet:
            process.join(timeout=60.0)
        assert _wait_for(
            lambda: all(
                queue.job(job_id).state is JobState.DONE
                for job_id in expected
            ),
            timeout=30.0,
        ), {job_id: queue.job(job_id).state for job_id in expected}
        attempts = 0
        for job_id, verdict in expected.items():
            job = queue.job(job_id)
            assert job.result["status"] == verdict, (job_id, job.reason)
            finishes = [
                event
                for event in queue.events(job_id)
                if event["kind"] == "job_finished"
            ]
            assert len(finishes) == 1  # ran to completion exactly once
            attempts += job.attempts
        assert attempts == len(expected) + 1  # exactly one retry happened
        # Cached PROVED re-served from the store, fast.
        cache = ResultCache(store_path)
        start = time.perf_counter()
        hit = cache.lookup(safe_counter(4, 12), "pdr", 100)
        elapsed = time.perf_counter() - start
        assert hit is not None and hit.proved
        assert elapsed < 0.05, f"cached lookup took {elapsed * 1000:.1f}ms"


# ---------------------------------------------------------------------- #
# Observability
# ---------------------------------------------------------------------- #


class TestServiceObservability:
    def _run_service(self, tmp_path, tag: str, traced: bool):
        from repro import obs

        store = Store(tmp_path / f"{tag}.sqlite")
        queue = TaskQueue(store)
        job_ids = [
            queue.submit(safe_text(), method="pdr"),
            queue.submit(buggy_text(), method="bmc"),
        ]
        tracer = None
        try:
            if traced:
                tracer = obs.enable(tick=0.0)
            Worker(store).run(drain=True)
        finally:
            if traced:
                obs.disable()
        payloads = []
        for job_id in job_ids:
            payload = dict(queue.job(job_id).result)
            payload.pop("stats")  # wall-clock noise, not verdict content
            payloads.append(payload)
        return payloads, tracer

    def test_traced_run_is_verdict_identical_and_observable(self, tmp_path):
        # The svc_tick probe follows the read-only probe contract: a
        # traced service run must return bit-identical verdicts
        # (status, trace, certificate, iterations) to an untraced one.
        plain, _ = self._run_service(tmp_path, "plain", traced=False)
        traced, tracer = self._run_service(tmp_path, "traced", traced=True)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )
        span_names = {span.name for span in tracer.spans}
        assert "svc.job" in span_names
        counter_names = {counter.name for counter in tracer.counters}
        assert "svc.queue_depth" in counter_names
        assert "svc.active_leases" in counter_names

    def test_metered_run_is_verdict_identical(self, tmp_path):
        # Same contract for the metrics registry: instruments only read
        # timestamps and add to private tallies, so verdicts are
        # bit-identical with metrics on or off — and with them on, the
        # queue tallies actually move.
        from repro.obs import metrics

        was = metrics.ENABLED
        metrics.disable()
        try:
            plain, _ = self._run_service(tmp_path, "unmetered", traced=False)
            metrics.enable()
            metrics.REGISTRY.reset()
            metered, _ = self._run_service(tmp_path, "metered", traced=False)
            doc = metrics.REGISTRY.to_json()
        finally:
            metrics.disable()
            metrics.REGISTRY.reset()
            if was:
                metrics.enable()
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            metered, sort_keys=True
        )
        claimed = sum(
            sample["value"]
            for sample in doc["repro_jobs_claimed_total"]["samples"]
        )
        assert claimed == 2
        run_hist = doc["repro_job_run_seconds"]["samples"]
        assert sum(sample["count"] for sample in run_hist) == 2
        assert sum(
            sample["count"]
            for sample in doc["repro_sat_solve_seconds"]["samples"]
        ) > 0


# ---------------------------------------------------------------------- #
# HTTP front
# ---------------------------------------------------------------------- #


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=15) as response:
        return json.loads(response.read())


def _post(base: str, path: str, payload: dict | None = None) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload or {}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read())


class TestServer:
    def test_submit_status_result_cancel_health_metrics(self, tmp_path):
        server = VerificationServer(
            tmp_path / "svc.sqlite",
            workers=1,
            worker_processes=False,
            worker_poll=0.02,
            lease_seconds=5.0,
        )
        with server:
            base = server.url
            health = _get(base, "/healthz")
            assert health["ok"] and health["schema_version"] == SCHEMA_VERSION
            assert "pdr" in health["engines"]
            job_id = _post(
                base,
                "/submit",
                {"netlist": safe_text(), "method": "pdr", "name": "safe"},
            )["job_id"]
            cancelled_id = _post(
                base,
                "/submit",
                {"netlist": safe_text(5, 20), "method": "pdr",
                 "priority": -10},
            )["job_id"]
            assert _post(base, f"/jobs/{cancelled_id}/cancel")["cancelled"]
            assert _wait_for(
                lambda: _get(base, f"/jobs/{job_id}")["state"] == "done"
            )
            result = _get(base, f"/jobs/{job_id}/result")["result"]
            assert result["status"] == "proved"
            assert result["certificate"] is not None
            events = _get(base, f"/jobs/{job_id}/events")["events"]
            assert any(e["kind"] == "job_finished" for e in events)
            listing = _get(base, "/jobs")["jobs"]
            states = {job["job_id"]: job["state"] for job in listing}
            assert states[cancelled_id] == "cancelled"
            metrics = _get(base, "/metrics")
            assert metrics["jobs"]["done"] >= 1
            assert metrics["certificates"] >= 1
            catalog = _get(base, "/engines")["engines"]
            assert {entry["name"] for entry in catalog} >= {"pdr", "bmc"}

    def test_submit_validation_and_backpressure(self, tmp_path):
        server = VerificationServer(
            tmp_path / "svc.sqlite", workers=0, max_pending=1
        )
        with server:
            base = server.url
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit",
                      {"netlist": safe_text(), "method": "astrology"})
            assert excinfo.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit", {"method": "bmc"})
            assert excinfo.value.code == 400
            _post(base, "/submit", {"netlist": safe_text(), "method": "bmc"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/submit",
                      {"netlist": safe_text(), "method": "bmc"})
            assert excinfo.value.code == 429
            body = json.loads(excinfo.value.read())
            assert body["retry_after"] > 0
            assert _get(base, "/healthz")["queue_depth"] == 1

# ---------------------------------------------------------------------- #
# Fleet telemetry: exposition formats, SSE streaming, persisted traces
# ---------------------------------------------------------------------- #


def _sse_collect(base: str, job_id: int, after: int = 0,
                 timeout: float = 30.0):
    """Consume one job's SSE stream until its ``end`` event.

    Returns ``(frames, end)`` where frames are ``(seq, kind, data)``
    triples in arrival order.
    """
    request = urllib.request.Request(
        f"{base}/jobs/{job_id}/events?stream=1&after={after}",
        headers={"Accept": "text/event-stream"},
    )
    frames, end, fields = [], None, {}
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.headers["Content-Type"].startswith(
            "text/event-stream"
        )
        for raw in response:
            line = raw.decode().rstrip("\r\n")
            if line == "":
                if "data" in fields:
                    data = json.loads(fields["data"])
                    if fields.get("event") == "end":
                        end = data
                        break
                    frames.append(
                        (int(fields["id"]), fields.get("event"), data)
                    )
                fields = {}
                continue
            if line.startswith(":"):
                continue
            key, _, value = line.partition(":")
            fields[key] = value[1:] if value.startswith(" ") else value
    return frames, end


class TestTelemetryServer:
    def _server(self, tmp_path, **kwargs):
        options = dict(
            workers=1,
            worker_processes=False,
            worker_poll=0.02,
            lease_seconds=5.0,
            sse_poll=0.02,
        )
        options.update(kwargs)
        return VerificationServer(tmp_path / "svc.sqlite", **options)

    def test_metrics_json_and_prometheus_agree(self, tmp_path):
        with self._server(tmp_path) as server:
            base = server.url
            job_id = _post(
                base, "/submit", {"netlist": safe_text(), "method": "pdr"}
            )["job_id"]
            assert _wait_for(
                lambda: _get(base, f"/jobs/{job_id}")["state"] == "done"
            )
            doc = _get(base, "/metrics")
            # Legacy gauges survive alongside the registry snapshot.
            assert doc["jobs"]["done"] == 1
            assert doc["queue_depth"] == 0
            families = doc["metrics"]
            assert families["repro_queue_depth"]["samples"][0]["value"] == 0
            won = {
                (s["labels"]["method"], s["labels"]["verdict"]): s["value"]
                for s in families["repro_jobs_won_total"]["samples"]
            }
            assert won[("pdr", "proved")] == 1
            # The Prometheus variant renders the same snapshot.
            request = urllib.request.Request(
                base + "/metrics", headers={"Accept": "text/plain"}
            )
            with urllib.request.urlopen(request, timeout=15) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                text = response.read().decode()
            assert "# TYPE repro_jobs_won_total counter" in text
            assert (
                'repro_jobs_won_total{method="pdr",verdict="proved"} 1'
                in text
            )
            assert "# TYPE repro_job_latency_seconds histogram" in text
            # Every value line parses as name{labels} value.
            for line in text.strip().splitlines():
                if line.startswith("#"):
                    continue
                assert " " in line
                name_part, value = line.rsplit(" ", 1)
                assert name_part
                float(value.replace("+Inf", "inf"))

    def test_sse_stream_end_to_end_with_resume(self, tmp_path):
        with self._server(tmp_path, trace_jobs=True) as server:
            base = server.url
            job_id = _post(
                base, "/submit", {"netlist": safe_text(), "method": "bmc",
                                  "max_depth": 5},
            )["job_id"]
            frames, end = _sse_collect(base, job_id, timeout=60.0)
            kinds = [kind for _, kind, _ in frames]
            assert kinds[0] == "submitted"
            assert kinds[-1] == "job_finished"
            seqs = [seq for seq, _, _ in frames]
            assert seqs == list(range(1, len(seqs) + 1))  # no gaps
            assert end["state"] == "done"
            assert end["seq"] == seqs[-1]
            assert end["trace_id"]
            # Resume mid-stream: only events after the cursor replay.
            resumed, resumed_end = _sse_collect(
                base, job_id, after=seqs[1], timeout=30.0
            )
            assert [seq for seq, _, _ in resumed] == seqs[2:]
            assert resumed_end["state"] == "done"
            # The JSON snapshot stays available for non-streaming clients.
            snapshot = _get(base, f"/jobs/{job_id}/events")["events"]
            assert [e["seq"] for e in snapshot] == seqs

    def test_job_trace_is_chrome_loadable(self, tmp_path):
        with self._server(tmp_path, trace_jobs=True) as server:
            base = server.url
            job_id = _post(
                base, "/submit", {"netlist": safe_text(), "method": "pdr"}
            )["job_id"]
            assert _wait_for(
                lambda: _get(base, f"/jobs/{job_id}")["state"] == "done"
            )
            assert _get(base, f"/jobs/{job_id}")["trace_id"]
            doc = _get(base, f"/jobs/{job_id}/trace")
            assert doc["otherData"]["schema"] == "repro.obs/1"
            assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
            span_names = {
                event["name"]
                for event in doc["traceEvents"]
                if event.get("ph") == "X"
            }
            assert "svc.job" in span_names
            for event in doc["traceEvents"]:
                if event["ph"] == "X":
                    assert {"ts", "dur", "pid", "tid"} <= set(event)

    def test_trace_404_without_trace_jobs(self, tmp_path):
        with self._server(tmp_path, trace_jobs=False) as server:
            base = server.url
            job_id = _post(
                base, "/submit", {"netlist": safe_text(), "method": "bmc",
                                  "max_depth": 3},
            )["job_id"]
            assert _wait_for(
                lambda: _get(base, f"/jobs/{job_id}")["state"] == "done"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, f"/jobs/{job_id}/trace")
            assert excinfo.value.code == 404


class TestSseDurability:
    def test_stream_survives_worker_sigkill_and_requeue(self, tmp_path):
        # A client mid-stream must ride through worker SIGKILL + lease
        # expiry + requeue and still land on the terminal event, with
        # no gaps in sequence ids — the log lives in the store, not in
        # any worker.
        import threading

        store_path = str(tmp_path / "svc.sqlite")
        store = Store(store_path)
        queue = TaskQueue(store, lease_seconds=0.4)
        job_id = queue.submit(safe_text(), method="pdr", name="victim")
        server = VerificationServer(
            store_path, workers=0, sse_poll=0.02
        )
        with server:
            base = server.url
            box = {}

            def client() -> None:
                box["frames"], box["end"] = _sse_collect(
                    base, job_id, timeout=60.0
                )

            listener = threading.Thread(target=client, daemon=True)
            listener.start()
            doomed = _start_stalling_worker(store_path)
            try:
                assert _wait_for(
                    lambda: queue.job(job_id).state is JobState.RUNNING
                )
                os.kill(doomed.pid, signal.SIGKILL)
            finally:
                doomed.join(timeout=5.0)
            time.sleep(0.5)  # lease lapses while the client is streaming
            assert queue.requeue_expired() == [(job_id, "requeued")]
            Worker(store, worker_id="survivor").run(drain=True)
            listener.join(timeout=30.0)
            assert not listener.is_alive(), "stream never terminated"
        frames, end = box["frames"], box["end"]
        kinds = [kind for _, kind, _ in frames]
        assert "requeued" in kinds
        assert kinds.count("claimed") == 2  # doomed + survivor
        assert kinds[-1] == "job_finished"
        seqs = [seq for seq, _, _ in frames]
        assert seqs == list(range(1, len(seqs) + 1))  # contiguous
        assert end["state"] == "done" and end["verdict"] == "proved"
