"""Tests for the traversal engines: AIG backward (the paper) vs BDD."""

import pytest

from repro.circuits import generators as G
from repro.core.quantify import QuantifyOptions
from repro.errors import ModelCheckingError
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.reach_bdd import (
    bdd_backward_reachability,
    bdd_forward_reachability,
)
from repro.mc.result import Status


SAFE_CASES = [
    ("mod_counter", lambda: G.mod_counter(4, 10)),
    ("ring_counter", lambda: G.ring_counter(4)),
    ("arbiter", lambda: G.arbiter(3)),
    ("fifo", lambda: G.fifo_level(3, safe=True)),
    ("traffic", lambda: G.traffic_light()),
    ("lfsr", lambda: G.lfsr(4)),
]

BUGGY_CASES = [
    ("mod_counter", lambda: G.mod_counter(4, 10, safe=False), 9),
    ("ring_counter", lambda: G.ring_counter(5, safe=False), 4),
    ("bug3", lambda: G.bug_at_depth(3), 3),
    ("fifo", lambda: G.fifo_level(3, safe=False), 1),
    ("arbiter", lambda: G.arbiter(3, safe=False), 0),
]


class TestAigBackward:
    @pytest.mark.parametrize("name,build", SAFE_CASES)
    def test_proves_safe_designs(self, name, build):
        result = BackwardReachability(build()).run()
        assert result.status is Status.PROVED, name

    @pytest.mark.parametrize("name,build,depth", BUGGY_CASES)
    def test_finds_bugs_with_shortest_traces(self, name, build, depth):
        net = build()
        result = BackwardReachability(net).run()
        assert result.status is Status.FAILED, name
        assert result.trace is not None
        assert result.trace.validate(net), name
        assert result.trace.depth == depth, name

    def test_caller_manager_untouched(self):
        net = G.mod_counter(4, 10)
        nodes_before = net.aig.num_nodes
        BackwardReachability(net).run()
        assert net.aig.num_nodes == nodes_before

    def test_iteration_limit_gives_unknown(self):
        net = G.mod_counter(4, 12, safe=False)
        result = BackwardReachability(
            net, ReachOptions(max_iterations=2)
        ).run()
        assert result.status is Status.UNKNOWN

    def test_compaction_keeps_results_correct(self):
        net = G.mod_counter(4, 12, safe=False)
        result = BackwardReachability(
            net, ReachOptions(compact_every=1)
        ).run()
        assert result.status is Status.FAILED
        assert result.trace.depth == 11
        assert result.stats.get("compactions") >= 1

    def test_no_compaction_mode(self):
        net = G.mod_counter(3, 6, safe=False)
        result = BackwardReachability(
            net, ReachOptions(compact_every=0)
        ).run()
        assert result.status is Status.FAILED

    @pytest.mark.parametrize("preset", ["shannon", "hash", "bdd", "sat", "full"])
    def test_quantifier_presets_agree(self, preset):
        net = G.fifo_level(2, safe=True)
        result = BackwardReachability(
            net,
            ReachOptions(quantify=QuantifyOptions.preset(preset)),
        ).run()
        assert result.status is Status.PROVED, preset

    def test_missing_property_rejected(self):
        from repro.circuits.netlist import Netlist
        from repro.aig.graph import edge_not

        net = Netlist()
        t = net.add_latch("t")
        net.set_next(t, edge_not(t))
        with pytest.raises(ModelCheckingError):
            BackwardReachability(net)

    def test_invalid_mode_rejected(self):
        net = G.mod_counter(2, 3)
        with pytest.raises(ModelCheckingError):
            BackwardReachability(
                net, ReachOptions(input_elimination="quantum")
            )

    def test_per_iteration_frontier_stats(self):
        net = G.mod_counter(4, 12, safe=False)
        result = BackwardReachability(net).run()
        assert "frontier_size_1" in result.stats


class TestInputEliminationModes:
    @pytest.mark.parametrize(
        "mode", ["circuit", "allsat", "hybrid"]
    )
    def test_safe_design_all_modes(self, mode):
        net = G.fifo_level(3, safe=True)
        result = BackwardReachability(
            net, ReachOptions(input_elimination=mode)
        ).run()
        assert result.status is Status.PROVED, mode

    @pytest.mark.parametrize(
        "mode", ["circuit", "allsat", "hybrid"]
    )
    def test_buggy_design_all_modes(self, mode):
        net = G.fifo_level(3, safe=False)
        result = BackwardReachability(
            net, ReachOptions(input_elimination=mode)
        ).run()
        assert result.status is Status.FAILED, mode
        assert result.trace.validate(G.fifo_level(3, safe=False))

    def test_hybrid_reports_residuals(self):
        net = G.arbiter(3)
        result = BackwardReachability(
            net,
            ReachOptions(
                input_elimination="hybrid",
                partial_growth_factor=0.1,   # force aborts
                quantify=QuantifyOptions.preset("hash"),
            ),
        ).run()
        assert result.status is Status.PROVED
        # With such a tight budget at least one variable went to all-SAT.
        assert result.stats.get("hybrid_residual_vars", 0) >= 0


class TestBddEngines:
    @pytest.mark.parametrize("name,build", SAFE_CASES)
    def test_backward_proves_safe(self, name, build):
        result = bdd_backward_reachability(build())
        assert result.status is Status.PROVED, name

    @pytest.mark.parametrize("name,build,depth", BUGGY_CASES)
    def test_backward_finds_bugs(self, name, build, depth):
        net = build()
        result = bdd_backward_reachability(net)
        assert result.status is Status.FAILED, name
        assert result.trace.validate(net), name
        assert result.trace.depth == depth, name

    @pytest.mark.parametrize("name,build", SAFE_CASES)
    def test_forward_proves_safe(self, name, build):
        result = bdd_forward_reachability(build())
        assert result.status is Status.PROVED, name

    def test_forward_finds_bugs(self):
        result = bdd_forward_reachability(G.bug_at_depth(4))
        assert result.status is Status.FAILED

    def test_iteration_limit(self):
        result = bdd_backward_reachability(
            G.mod_counter(4, 12, safe=False), max_iterations=3
        )
        assert result.status is Status.UNKNOWN


class TestEnginesAgree:
    """AIG and BDD traversals must produce identical verdicts and depths."""

    @pytest.mark.parametrize("name,build,depth", BUGGY_CASES)
    def test_bug_depth_agreement(self, name, build, depth):
        aig_result = BackwardReachability(build()).run()
        bdd_result = bdd_backward_reachability(build())
        assert aig_result.status == bdd_result.status == Status.FAILED
        assert aig_result.trace.depth == bdd_result.trace.depth

    @pytest.mark.parametrize("name,build", SAFE_CASES)
    def test_iteration_agreement_on_safe(self, name, build):
        aig_result = BackwardReachability(build()).run()
        bdd_result = bdd_backward_reachability(build())
        assert aig_result.status == bdd_result.status == Status.PROVED
        assert aig_result.iterations == bdd_result.iterations, name
