"""Tests for partial quantification (Section 4) and in-lining (Section 3)."""

import pytest

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import and_all, cofactor, compose, or_, support, xor
from repro.circuits import generators as G
from repro.circuits.combinational import parity, random_logic
from repro.core.partial import PartialQuantifier
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.substitution import (
    preimage_by_substitution,
    preimage_relational,
)
from tests.conftest import build_random_aig, edges_equivalent


class TestPartialQuantifier:
    def test_everything_cheap_quantifies_fully(self):
        aig, inputs, root = build_random_aig(4, 15, seed=801)
        quantifier = PartialQuantifier(aig, growth_factor=1000.0)
        outcome = quantifier.quantify(root, [e >> 1 for e in inputs[:2]])
        assert not outcome.aborted
        for node in (e >> 1 for e in inputs[:2]):
            assert node not in support(aig, outcome.edge)

    def test_strict_budget_aborts(self):
        # Parity cofactors never share structure and DCs do not help, so a
        # sub-1.0 growth factor must abort (size cannot shrink).
        aig, inputs, root = parity(8)
        quantifier = PartialQuantifier(
            aig,
            options=QuantifyOptions.preset("hash"),
            growth_factor=0.3,
        )
        outcome = quantifier.quantify(root, [e >> 1 for e in inputs[:3]])
        assert outcome.aborted

    def test_aborted_vars_still_in_support(self):
        aig, inputs, root = parity(8)
        quantifier = PartialQuantifier(
            aig,
            options=QuantifyOptions.preset("hash"),
            growth_factor=0.3,
        )
        outcome = quantifier.quantify(root, [e >> 1 for e in inputs[:3]])
        for node in outcome.aborted:
            assert node in support(aig, outcome.edge)

    def test_partial_result_is_sound_overapproximation_free(self):
        # The accepted quantifications must agree with a full quantifier
        # on the same accepted variable set.
        aig, inputs, root = build_random_aig(5, 25, seed=802)
        quantifier = PartialQuantifier(aig, growth_factor=1.4)
        variables = [e >> 1 for e in inputs[:3]]
        outcome = quantifier.quantify(root, variables)
        reference = quantify_exists(aig, root, outcome.quantified)
        assert edges_equivalent(
            aig, outcome.edge, reference.edge, [e >> 1 for e in inputs]
        )

    def test_invalid_growth_factor_rejected(self):
        aig = Aig()
        with pytest.raises(ValueError):
            PartialQuantifier(aig, growth_factor=0)

    def test_absolute_limit(self):
        aig, inputs, root = parity(10)
        quantifier = PartialQuantifier(
            aig,
            options=QuantifyOptions.preset("hash"),
            growth_factor=100.0,
            absolute_limit=1,
        )
        outcome = quantifier.quantify(root, [e >> 1 for e in inputs[:2]])
        assert outcome.aborted

    def test_out_of_support_vars_count_as_quantified(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        quantifier = PartialQuantifier(aig)
        outcome = quantifier.quantify(f, [c >> 1])
        assert c >> 1 in outcome.quantified


class TestInlining:
    def test_inlining_matches_relational_quantification(self):
        """The Section 3 rule: compose == build relation + quantify x'."""
        net = G.mod_counter(3, 6)
        aig = net.aig
        bad = edge_not(net.property_edge)
        next_fns = net.next_functions()
        inlined = preimage_by_substitution(aig, bad, next_fns)
        # Relational: fresh placeholders, S(x') AND (x' == delta), then
        # quantify the placeholders.
        placeholders = {
            node: aig.add_input(f"ph{node}") >> 1 for node in net.latch_nodes
        }
        relational = preimage_relational(aig, bad, next_fns, placeholders)
        quantified = quantify_exists(
            aig, relational, list(placeholders.values())
        )
        all_nodes = net.latch_nodes + net.input_nodes
        assert edges_equivalent(aig, inlined, quantified.edge, all_nodes)

    def test_inlining_needs_no_placeholder_vars(self):
        net = G.ring_counter(4)
        aig = net.aig
        bad = edge_not(net.property_edge)
        inputs_before = aig.num_inputs
        preimage_by_substitution(aig, bad, net.next_functions())
        assert aig.num_inputs == inputs_before

    def test_substitution_only_touches_present_vars(self):
        aig = Aig()
        a, b, x = aig.add_inputs(3)
        state_set = aig.and_(a, b)
        result = preimage_by_substitution(aig, state_set, {a >> 1: x})
        assert support(aig, result) == {b >> 1, x >> 1}

    def test_relational_placeholder_validation(self):
        net = G.mod_counter(2, 3)
        aig = net.aig
        bad = edge_not(net.property_edge)
        gate = aig.and_(2 * net.latch_nodes[0], 2 * net.latch_nodes[1])
        from repro.errors import AigError

        with pytest.raises(AigError):
            preimage_relational(
                aig, bad, net.next_functions(),
                {net.latch_nodes[0]: gate >> 1},
            )
