"""Unit tests for the AIG manager: hashing, simplification, cones."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, edge_is_complement, edge_node, edge_not
from repro.aig.simulate import truth_table
from repro.errors import AigError
from tests.conftest import build_random_aig


class TestConstants:
    def test_false_true_edges(self):
        assert FALSE == 0
        assert TRUE == 1
        assert edge_not(FALSE) == TRUE

    def test_edge_helpers(self):
        assert edge_node(7) == 3
        assert edge_is_complement(7)
        assert not edge_is_complement(6)


class TestSimplification:
    def setup_method(self):
        self.aig = Aig()
        self.a = self.aig.add_input("a")
        self.b = self.aig.add_input("b")

    def test_and_with_false(self):
        assert self.aig.and_(self.a, FALSE) == FALSE
        assert self.aig.and_(FALSE, self.a) == FALSE

    def test_and_with_true(self):
        assert self.aig.and_(self.a, TRUE) == self.a
        assert self.aig.and_(TRUE, self.b) == self.b

    def test_idempotence(self):
        assert self.aig.and_(self.a, self.a) == self.a

    def test_contradiction(self):
        assert self.aig.and_(self.a, edge_not(self.a)) == FALSE

    def test_structural_hashing_commutes(self):
        assert self.aig.and_(self.a, self.b) == self.aig.and_(self.b, self.a)

    def test_hashing_distinguishes_polarity(self):
        plain = self.aig.and_(self.a, self.b)
        mixed = self.aig.and_(edge_not(self.a), self.b)
        assert plain != mixed

    def test_no_duplicate_nodes(self):
        before = self.aig.num_ands
        self.aig.and_(self.a, self.b)
        mid = self.aig.num_ands
        self.aig.and_(self.b, self.a)
        assert self.aig.num_ands == mid == before + 1


class TestStructure:
    def test_input_classification(self):
        aig = Aig()
        a = aig.add_input()
        g = aig.and_(a, edge_not(a))  # folds to constant
        f = aig.and_(a, aig.add_input())
        assert aig.is_input(a >> 1)
        assert aig.is_and(f >> 1)
        assert aig.is_const(0)
        assert not aig.is_input(0)

    def test_fanins(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, edge_not(b))
        f0, f1 = aig.fanins(f >> 1)
        assert {f0, f1} == {a, edge_not(b)}

    def test_fanins_of_input_rejected(self):
        aig = Aig()
        a = aig.add_input()
        with pytest.raises(AigError):
            aig.fanins(a >> 1)

    def test_levels(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        g = aig.and_(f, c)
        assert aig.level(a >> 1) == 0
        assert aig.level(f >> 1) == 1
        assert aig.level(g >> 1) == 2

    def test_counts(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        aig.and_(a, b)
        assert aig.num_inputs == 2
        assert aig.num_ands == 1
        assert aig.num_nodes == 4  # const + 2 inputs + 1 and

    def test_input_names(self):
        aig = Aig()
        a = aig.add_input("clk")
        anon = aig.add_input()
        assert aig.input_name(a >> 1) == "clk"
        assert aig.name_of(anon >> 1) is None

    def test_foreign_edge_rejected(self):
        aig = Aig()
        aig.add_input()
        with pytest.raises(AigError):
            aig.and_(999, 2)

    def test_negative_input_count_rejected(self):
        with pytest.raises(AigError):
            Aig().add_inputs(-1)


class TestCone:
    def test_cone_topological(self):
        aig, inputs, root = build_random_aig(5, 30, seed=1)
        order = aig.cone([root])
        position = {node: i for i, node in enumerate(order)}
        for node in order:
            if aig.is_and(node):
                f0, f1 = aig.fanins(node)
                for fanin in (f0 >> 1, f1 >> 1):
                    if fanin != 0:
                        assert position[fanin] < position[node]

    def test_cone_excludes_unreachable(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        aig.and_(b, c)  # not in f's cone
        cone = aig.cone([f])
        assert (c >> 1) not in cone

    def test_cone_of_constant_empty(self):
        aig = Aig()
        assert aig.cone([FALSE]) == []
        assert aig.cone([TRUE]) == []

    def test_cone_and_count(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(aig.and_(a, b), c)
        assert aig.cone_and_count(f) == 2
        assert aig.cone_and_count(a) == 0


class TestExtract:
    def test_extract_preserves_function(self):
        aig, inputs, root = build_random_aig(4, 25, seed=7)
        input_nodes = [e >> 1 for e in inputs]
        before = truth_table(aig, root, input_nodes)
        compact, (new_root,), node_map = aig.extract(
            [root], keep_all_inputs=True
        )
        after = truth_table(compact, new_root, compact.inputs)
        assert before == after

    def test_extract_drops_dead_logic(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        for _ in range(5):
            c = aig.and_(c, f)  # build junk that f does not depend on
        compact, _, _ = aig.extract([f])
        assert compact.num_ands == 1

    def test_extract_keep_all_inputs_alignment(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, c)  # b unused
        compact, _, _ = aig.extract([f], keep_all_inputs=True)
        assert compact.num_inputs == 3

    def test_extract_without_keeping_inputs(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, c)
        compact, _, _ = aig.extract([f])
        assert compact.num_inputs == 2

    def test_extract_constant_edge(self):
        aig = Aig()
        aig.add_input()
        compact, (e,), _ = aig.extract([TRUE])
        assert e == TRUE


class TestRebuild:
    def test_identity_rebuild_is_stable(self):
        aig, inputs, root = build_random_aig(4, 20, seed=3)
        assert aig.rebuild(root, {}) == root

    def test_rebuild_with_constant_leaf(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        assert aig.rebuild(f, {a >> 1: TRUE}) == b
        assert aig.rebuild(f, {a >> 1: FALSE}) == FALSE

    def test_rebuild_complement_root(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = edge_not(aig.and_(a, b))
        assert aig.rebuild(f, {a >> 1: TRUE}) == edge_not(b)

    def test_rebuild_cache_shared(self):
        aig, inputs, root = build_random_aig(4, 20, seed=9)
        cache: dict[int, int] = {}
        first = aig.rebuild(root, {}, cache)
        second = aig.rebuild(edge_not(root), {}, cache)
        assert second == edge_not(first)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_aig_hash_consing_is_canonical_per_structure(seed):
    # Building the same structure twice in one manager creates no new nodes.
    aig, inputs, root = build_random_aig(4, 15, seed=seed)
    count = aig.num_ands
    aig2, inputs2, root2 = build_random_aig(4, 15, seed=seed)
    # Re-running the same construction inside the first manager:
    import random as _random

    rng = _random.Random(seed)
    nodes = list(inputs)
    for _ in range(15):
        a = rng.choice(nodes) ^ rng.randint(0, 1)
        b = rng.choice(nodes) ^ rng.randint(0, 1)
        nodes.append(aig.and_(a, b))
    assert aig.num_ands == count
