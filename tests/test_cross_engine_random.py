"""Cross-engine agreement on random sequential circuits.

The strongest soundness check in the suite: generate small random
netlists with random invariants, run every complete engine, and require
identical verdicts — plus matching shortest-counterexample depths for the
breadth-first engines and BMC.  A brute-force explicit-state model
checker over the (tiny) state space serves as the ground truth.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.simulate import eval_edge
from repro.circuits.netlist import Netlist
from repro.mc.engine import verify
from repro.mc.result import Status


def random_netlist(
    seed: int, num_latches: int = 3, num_inputs: int = 2, num_gates: int = 10
) -> Netlist:
    """A random sequential circuit with a random latch-only invariant."""
    rng = random.Random(seed)
    netlist = Netlist(f"random_{seed}")
    inputs = [netlist.add_input(f"i{k}") for k in range(num_inputs)]
    latches = [
        netlist.add_latch(f"l{k}", init=bool(rng.randint(0, 1)))
        for k in range(num_latches)
    ]
    aig = netlist.aig
    pool = inputs + latches
    for _ in range(num_gates):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    for latch in latches:
        netlist.set_next(latch, rng.choice(pool) ^ rng.randint(0, 1))
    # Property over latches only, biased away from trivially-false.
    candidates = latches + pool[len(inputs) + len(latches):]
    prop = rng.choice(candidates) ^ rng.randint(0, 1)
    netlist.set_property(prop)
    netlist.validate()
    return netlist


def explicit_state_check(netlist: Netlist) -> tuple[bool, int | None]:
    """Ground truth by explicit BFS over the full state space.

    Returns ``(safe, shortest_violation_depth)``.  Only usable for tiny
    designs (2**latches * 2**inputs evaluations per level).
    """
    latch_nodes = netlist.latch_nodes
    input_nodes = netlist.input_nodes
    num_inputs = len(input_nodes)

    def violates(state: dict[int, bool]) -> bool:
        for bits in range(1 << num_inputs):
            assignment = dict(state)
            for k, node in enumerate(input_nodes):
                assignment[node] = bool((bits >> k) & 1)
            if not eval_edge(netlist.aig, netlist.property_edge, assignment):
                return True
        return False

    def key(state: dict[int, bool]) -> int:
        return sum(int(state[n]) << k for k, n in enumerate(latch_nodes))

    frontier = [netlist.init_assignment()]
    seen = {key(frontier[0])}
    depth = 0
    while frontier:
        for state in frontier:
            if violates(state):
                return False, depth
        next_frontier = []
        for state in frontier:
            for bits in range(1 << num_inputs):
                step_inputs = {
                    node: bool((bits >> k) & 1)
                    for k, node in enumerate(input_nodes)
                }
                successor = netlist.simulate_step(state, step_inputs)
                marker = key(successor)
                if marker not in seen:
                    seen.add(marker)
                    next_frontier.append(successor)
        frontier = next_frontier
        depth += 1
    return True, None


COMPLETE_ENGINES = ["reach_aig", "reach_aig_fwd", "reach_bdd", "reach_bdd_fwd"]


class TestCrossEngine:
    @pytest.mark.parametrize("seed", range(20))
    def test_all_engines_match_explicit_state_truth(self, seed):
        netlist = random_netlist(seed)
        safe, depth = explicit_state_check(netlist)
        for engine in COMPLETE_ENGINES:
            result = verify(random_netlist(seed), method=engine)
            expected = Status.PROVED if safe else Status.FAILED
            assert result.status is expected, (engine, seed)
            if not safe:
                # Every complete engine must produce a shortest,
                # replayable counterexample.
                assert result.trace is not None, (engine, seed)
                assert result.trace.depth == depth, (engine, seed)
                assert result.trace.validate(random_netlist(seed))

    @pytest.mark.parametrize("seed", range(20))
    def test_bmc_agrees_on_buggy_designs(self, seed):
        netlist = random_netlist(seed)
        safe, depth = explicit_state_check(netlist)
        result = verify(random_netlist(seed), method="bmc", max_depth=20)
        if safe:
            # BMC is incomplete: it may only report UNKNOWN on safe designs.
            assert result.status in (Status.UNKNOWN, Status.PROVED)
        else:
            assert result.status is Status.FAILED
            assert result.trace.depth == depth

    @pytest.mark.parametrize("seed", range(10))
    def test_induction_is_sound(self, seed):
        netlist = random_netlist(100 + seed)
        safe, _ = explicit_state_check(netlist)
        result = verify(random_netlist(100 + seed), method="k_induction",
                        max_depth=8)
        if result.status is Status.PROVED:
            assert safe, f"induction proved an unsafe design (seed {seed})"
        if result.status is Status.FAILED:
            assert not safe

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1000, max_value=99_999))
    def test_property_backward_forward_agree(self, seed):
        backward = verify(random_netlist(seed), method="reach_aig")
        forward = verify(random_netlist(seed), method="reach_aig_fwd")
        assert backward.status == forward.status
        if backward.status is Status.FAILED:
            assert backward.trace.depth == forward.trace.depth
