"""Tests for AND-tree balancing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import or_
from repro.aig.balance import (
    balance,
    balance_stats,
    collect_conjunction,
)
from tests.conftest import build_random_aig, edges_equivalent


def skewed_chain(width):
    """A maximally skewed AND chain over ``width`` inputs."""
    aig = Aig()
    inputs = aig.add_inputs(width)
    chain = inputs[0]
    for x in inputs[1:]:
        chain = aig.and_(chain, x)
    return aig, inputs, chain


class TestCollect:
    def test_chain_leaves(self):
        aig, inputs, chain = skewed_chain(5)
        assert sorted(collect_conjunction(aig, chain)) == sorted(inputs)

    def test_inverted_edge_is_leaf(self):
        aig, inputs, chain = skewed_chain(3)
        assert collect_conjunction(aig, edge_not(chain)) == [edge_not(chain)]

    def test_or_boundary_respected(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        disjunction = or_(aig, a, b)
        root = aig.and_(disjunction, c)
        leaves = collect_conjunction(aig, root)
        assert set(leaves) == {disjunction, c}

    def test_contradictory_leaves_collapse(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        # Build x AND NOT x through two separate gates so the manager's
        # local simplification cannot see it.
        left = aig.and_(a, b)
        right = aig.and_(edge_not(a), b)
        root = aig.and_(left, right)
        assert collect_conjunction(aig, root) == [FALSE]

    def test_duplicate_leaves_removed(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        left = aig.and_(a, b)
        right = aig.and_(b, a)  # hashes to the same node
        root = aig.and_(left, right)
        # left == right, so the conjunction is just {a, b}.
        assert sorted(collect_conjunction(aig, root)) == sorted([a, b])

    def test_input_edge(self):
        aig = Aig()
        a = aig.add_input()
        assert collect_conjunction(aig, a) == [a]


class TestBalance:
    def test_chain_depth_becomes_logarithmic(self):
        aig, inputs, chain = skewed_chain(16)
        assert aig.level(chain >> 1) == 15
        balanced, stats = balance_stats(aig, chain)
        assert stats.get("depth_after") == 4
        assert stats.get("size_after") == stats.get("size_before")
        assert edges_equivalent(
            aig, chain, balanced, [e >> 1 for e in inputs]
        )

    def test_constants_pass_through(self):
        aig = Aig()
        assert balance(aig, TRUE) == TRUE
        assert balance(aig, FALSE) == FALSE

    def test_nested_or_and_structure(self):
        aig = Aig()
        inputs = aig.add_inputs(8)
        # OR of two skewed 4-input AND chains.
        def chain(edges):
            result = edges[0]
            for e in edges[1:]:
                result = aig.and_(result, e)
            return result

        root = or_(aig, chain(inputs[:4]), chain(inputs[4:]))
        balanced = balance(aig, root)
        assert edges_equivalent(
            aig, root, balanced, [e >> 1 for e in inputs]
        )
        assert aig.level(balanced >> 1) <= aig.level(root >> 1)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_aigs_preserved_and_not_deeper(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=6, num_gates=50, seed=seed
        )
        depth_before = aig.level(root >> 1)
        balanced = balance(aig, root)
        assert edges_equivalent(
            aig, root, balanced, [e >> 1 for e in inputs]
        )
        assert aig.level(balanced >> 1) <= depth_before

    def test_shared_cache_across_roots(self):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=30, seed=3
        )
        cache = {}
        first = balance(aig, root, cache)
        second = balance(aig, root, cache)
        assert first == second

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_balance_preserves_function(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=30, seed=seed
        )
        balanced = balance(aig, root)
        assert edges_equivalent(
            aig, root, balanced, [e >> 1 for e in inputs]
        )
