"""Tests for the ``repro`` command-line interface.

Every subcommand is exercised through ``main(argv)`` with real files in a
tmp directory, checking both the exit codes and the printed reports.
"""

import pytest

from repro.circuits.bench_format import serialize_bench
from repro.circuits.blif import parse_blif
from repro.circuits.library import handshake, s27
from repro.circuits.parse import serialize_netlist
from repro.cli import main


@pytest.fixture
def s27_bench(tmp_path):
    path = tmp_path / "s27.bench"
    path.write_text(serialize_bench(s27()))
    return str(path)


@pytest.fixture
def handshake_file(tmp_path):
    path = tmp_path / "handshake.net"
    path.write_text(serialize_netlist(handshake(True)))
    return str(path)


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.net"
    path.write_text(serialize_netlist(handshake(False)))
    return str(path)


class TestEngines:
    def test_lists_every_registered_engine(self, capsys):
        from repro.api.registry import engine_names

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in engine_names():
            assert name in out

    def test_shows_capability_flags(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        lines = {
            line.split()[0]: line for line in out.splitlines()[1:] if line
        }
        assert "complete" not in lines["bmc"]
        assert "complete" in lines["itp"]
        assert "composite" in lines["portfolio"]
        assert "variant:reach_aig" in lines["reach_aig_allsat"]
        assert "forward" in lines["itp"]

    def test_lists_pdr_with_its_capabilities(self, capsys):
        # The registry-derived listing must include the PDR engine with
        # its full capability row (complete, trace-producing,
        # constraint-honoring, forward).
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        lines = {
            line.split()[0]: line for line in out.splitlines()[1:] if line
        }
        assert "pdr" in lines
        for flag in ("complete", "trace", "constraints", "forward"):
            assert flag in lines["pdr"], flag

    def test_lists_cnc_engine(self, capsys):
        # The cube-and-conquer engine must appear in the registry-derived
        # listing as a bounded (not complete) forward engine.
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        lines = {
            line.split()[0]: line for line in out.splitlines()[1:] if line
        }
        assert "cnc" in lines
        assert "forward" in lines["cnc"]
        assert "complete" not in lines["cnc"]


class TestInfo:
    def test_info_reports_structure(self, s27_bench, capsys):
        assert main(["info", s27_bench]) == 0
        out = capsys.readouterr().out
        assert "inputs:    4" in out
        assert "latches:   3" in out

    def test_info_missing_file(self, capsys):
        assert main(["info", "/nonexistent/x.bench"]) == 2
        assert "error" in capsys.readouterr().err


class TestConvert:
    def test_bench_to_blif(self, s27_bench, tmp_path, capsys):
        target = tmp_path / "s27.blif"
        assert main(["convert", s27_bench, str(target)]) == 0
        recovered = parse_blif(target.read_text())
        assert recovered.num_latches == 3

    def test_to_native_format(self, s27_bench, tmp_path):
        target = tmp_path / "s27.net"
        assert main(["convert", s27_bench, str(target)]) == 0
        assert "netlist" in target.read_text()


class TestModelCheck:
    def test_proved_property_exit_zero(self, handshake_file, capsys):
        assert main(["mc", handshake_file]) == 0
        assert "proved" in capsys.readouterr().out

    def test_failed_property_exit_one(self, buggy_file, capsys):
        assert main(["mc", buggy_file, "--trace"]) == 1
        out = capsys.readouterr().out
        assert "failed" in out
        assert "counterexample depth" in out
        assert "step 0" in out

    def test_property_flag_overrides(self, s27_bench, capsys):
        # "G17 is invariantly 1" is false for s27 (G17 = NOT G11 toggles).
        code = main(
            ["mc", s27_bench, "--property", "G17", "--method", "reach_bdd"]
        )
        assert code == 1

    def test_no_property_is_an_error(self, s27_bench, capsys):
        assert main(["mc", s27_bench]) == 2
        assert "property" in capsys.readouterr().err

    def test_bmc_method(self, buggy_file, capsys):
        assert main(["mc", buggy_file, "--method", "bmc"]) == 1

    def test_itp_method_proves(self, handshake_file, capsys):
        assert main(["mc", handshake_file, "--method", "itp"]) == 0
        out = capsys.readouterr().out
        assert "engine:  itp" in out
        assert "proved" in out

    def test_itp_method_finds_counterexample(self, buggy_file, capsys):
        assert main(["mc", buggy_file, "--method", "itp", "--trace"]) == 1
        out = capsys.readouterr().out
        assert "failed" in out
        assert "counterexample depth" in out

    def test_pdr_method_proves(self, handshake_file, capsys):
        assert main(["mc", handshake_file, "--method", "pdr"]) == 0
        out = capsys.readouterr().out
        assert "engine:  pdr" in out
        assert "proved" in out

    def test_pdr_method_finds_counterexample(self, buggy_file, capsys):
        assert main(["mc", buggy_file, "--method", "pdr", "--trace"]) == 1
        out = capsys.readouterr().out
        assert "failed" in out
        assert "counterexample depth" in out

    def test_unknown_signal_rejected(self, s27_bench, capsys):
        assert main(["mc", s27_bench, "--property", "nope"]) == 2
        assert "unknown signal" in capsys.readouterr().err

    def test_latch_name_resolves_as_property(self, handshake_file, capsys):
        # Regression: the docstring promises latch names resolve, and
        # grant_a starts at 0, so "invariantly 1" fails immediately.
        assert main(
            ["mc", handshake_file, "--property", "grant_a",
             "--method", "bmc"]
        ) == 1
        assert "failed" in capsys.readouterr().out

    def test_negated_latch_property(self, s27_bench):
        # "!G5" must resolve to the complement of latch G5's edge;
        # reach_bdd decides it either way without erroring.
        code = main(
            ["mc", s27_bench, "--property", "!G5", "--method", "reach_bdd"]
        )
        assert code in (0, 1)


class TestObservabilityFlags:
    def test_trace_path_writes_chrome_trace(
        self, handshake_file, tmp_path, capsys
    ):
        import json

        out = tmp_path / "run.json"
        code = main(
            ["mc", handshake_file, "--method", "pdr", "--trace", str(out)]
        )
        assert code == 0
        assert f"trace: wrote {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        categories = {
            event["cat"]
            for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert {"engine", "frames", "sat"} <= categories

    def test_bare_trace_still_prints_counterexample(
        self, buggy_file, capsys
    ):
        # Backwards compatibility: --trace without a PATH keeps its
        # original meaning and never writes a file.
        assert main(["mc", buggy_file, "--trace"]) == 1
        out = capsys.readouterr().out
        assert "step 0" in out
        assert "trace: wrote" not in out

    def test_report_prints_summary(self, handshake_file, capsys):
        code = main(["mc", handshake_file, "--method", "pdr", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report: pdr -> proved" in out
        assert "phases:" in out

    def test_report_path_writes_json(
        self, handshake_file, tmp_path, capsys
    ):
        import json

        path = tmp_path / "report.json"
        code = main(
            ["mc", handshake_file, "--method", "pdr",
             "--report", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["engine"] == "pdr"
        assert doc["status"] == "proved"
        assert doc["phases"]

    def test_mc_stats_flag_prints_to_stderr(self, handshake_file, capsys):
        assert main(
            ["mc", handshake_file, "--method", "pdr", "--stats"]
        ) == 0
        err = capsys.readouterr().err
        assert "sat_calls" in err

    def test_portfolio_stats_flag_prints_to_stderr(
        self, handshake_file, capsys
    ):
        code = main(
            ["portfolio", handshake_file, "--timeout", "10", "--stats"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "problems" in err

    def test_tracing_disabled_after_cli_run(self, handshake_file, tmp_path):
        from repro import obs

        main(
            ["mc", handshake_file, "--method", "pdr",
             "--trace", str(tmp_path / "t.json")]
        )
        assert not obs.is_enabled()


class TestQuantify:
    def test_quantify_reports_sizes(self, s27_bench, capsys):
        code = main(
            ["quantify", s27_bench, "--output", "G17", "--vars", "G0,G1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quantified:" in out
        assert "AND nodes" in out

    def test_quantify_preset_and_schedule(self, s27_bench, capsys):
        code = main(
            [
                "quantify", s27_bench, "--output", "G17",
                "--vars", "G0", "--preset", "shannon",
                "--schedule", "static",
            ]
        )
        assert code == 0

    def test_quantify_unknown_var(self, s27_bench, capsys):
        code = main(
            ["quantify", s27_bench, "--output", "G17", "--vars", "zz"]
        )
        assert code == 2


class TestFraigCommand:
    def test_fraig_reports_reduction(self, s27_bench, capsys):
        assert main(["fraig", s27_bench]) == 0
        assert "size:" in capsys.readouterr().out

    def test_fraig_circuit_engine(self, s27_bench, capsys):
        assert main(["fraig", s27_bench, "--engine", "circuit"]) == 0


class TestAtpgCommand:
    def test_atpg_campaign(self, s27_bench, capsys):
        assert main(["atpg", s27_bench, "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault list:" in out
        assert "coverage" in out
        assert "deterministic pass" in out


class TestResolveSignal:
    def test_latch_lookup_returns_latch_edge(self):
        from repro.cli import _resolve_signal

        netlist = handshake(True)
        by_name = {latch.name: latch for latch in netlist.latches}
        edge = _resolve_signal(netlist, "grant_a")
        assert edge == 2 * by_name["grant_a"].node
        assert _resolve_signal(netlist, "!grant_a") == edge ^ 1


class TestPortfolioCommand:
    def test_all_proved_exit_zero(self, handshake_file, capsys):
        assert main(["portfolio", handshake_file, "--timeout", "10"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out
        assert "winners:" in out

    def test_any_failed_exit_one(self, handshake_file, buggy_file, capsys):
        code = main(
            ["portfolio", handshake_file, buggy_file, "--timeout", "10"]
        )
        assert code == 1
        assert "failed" in capsys.readouterr().out

    def test_all_unknown_exit_three(self, handshake_file, capsys):
        # bmc alone cannot prove a safe design.
        code = main(
            ["portfolio", handshake_file, "--engines", "bmc",
             "--timeout", "10"]
        )
        assert code == 3
        assert "unknown" in capsys.readouterr().out

    def test_cache_file_round_trip(self, handshake_file, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        args = ["portfolio", handshake_file, "--cache", str(cache),
                "--timeout", "10"]
        assert main(args) == 0
        assert cache.exists()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "yes" in out.splitlines()[-3]  # served from cache

    def test_no_property_is_an_error(self, s27_bench, capsys):
        assert main(["portfolio", s27_bench]) == 2
        assert "property" in capsys.readouterr().err

    def test_property_flag_applies_to_files(self, s27_bench, capsys):
        code = main(
            ["portfolio", s27_bench, "--property", "G17",
             "--engines", "bmc,reach_bdd", "--timeout", "10"]
        )
        assert code == 1

    def test_unknown_engine_rejected(self, handshake_file, capsys):
        # The registry rejects unknown engines up front (usage error),
        # instead of spawning a worker that crashes into UNKNOWN.
        code = main(
            ["portfolio", handshake_file, "--engines", "warp_drive"]
        )
        assert code == 2
        assert "unknown engine" in capsys.readouterr().err


class TestMinimizeFlag:
    def test_minimize_reports_care_ratio(self, buggy_file, capsys):
        assert main(["mc", buggy_file, "--minimize", "--trace"]) == 1
        out = capsys.readouterr().out
        assert "minimized:" in out
        assert "matter" in out


class TestEnginesJson:
    # Satellite: `repro engines --json` is the machine-readable registry
    # remote clients (and the service's /engines endpoint) rely on, so
    # its schema is pinned here.
    CAPABILITY_KEYS = {
        "produces_trace", "complete", "supports_constraints",
        "quick", "composite", "variant_of",
    }

    def test_json_registry_schema(self, capsys):
        import json

        from repro.api.registry import engine_names

        assert main(["engines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        catalog = {entry["name"]: entry for entry in payload["engines"]}
        assert set(catalog) == set(engine_names())
        for entry in catalog.values():
            assert set(entry) == {
                "name", "summary", "direction", "depth_field",
                "capabilities", "options",
            }
            assert set(entry["capabilities"]) == self.CAPABILITY_KEYS
            assert entry["direction"] in ("backward", "forward", "any")
            assert isinstance(entry["options"], list)
        assert catalog["bmc"]["capabilities"]["complete"] is False
        assert catalog["portfolio"]["capabilities"]["composite"] is True
        assert (
            catalog["reach_aig_allsat"]["capabilities"]["variant_of"]
            == "reach_aig"
        )
        assert "max_depth" in catalog["bmc"]["options"]


class TestServiceCLI:
    def test_submit_wait_proves_offline(
        self, handshake_file, tmp_path, capsys
    ):
        store = str(tmp_path / "svc.sqlite")
        code = main(
            ["submit", handshake_file, "--store", store,
             "--method", "pdr", "--wait"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "submitted" in out
        assert '"verdict": "proved"' in out

    def test_submit_wait_failed_property_exit_one(
        self, buggy_file, tmp_path, capsys
    ):
        store = str(tmp_path / "svc.sqlite")
        code = main(
            ["submit", buggy_file, "--store", store,
             "--method", "bmc", "--wait"]
        )
        assert code == 1
        assert '"verdict": "failed"' in capsys.readouterr().out

    def test_submit_without_property_is_usage_error(
        self, s27_bench, tmp_path, capsys
    ):
        code = main(
            ["submit", s27_bench, "--store", str(tmp_path / "s.sqlite")]
        )
        assert code == 2
        assert "property" in capsys.readouterr().err

    def test_jobs_table_and_json(self, handshake_file, tmp_path, capsys):
        import json

        store = str(tmp_path / "svc.sqlite")
        main(["submit", handshake_file, "--store", store,
              "--method", "pdr", "--name", "ok", "--wait"])
        capsys.readouterr()
        assert main(["jobs", "--store", store]) == 0
        table = capsys.readouterr().out
        assert "done" in table and "proved" in table and "ok" in table
        assert main(["jobs", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"][0]["state"] == "done"
        assert payload["jobs"][0]["verdict"] == "proved"
        assert main(["jobs", "--store", store, "--state", "failed"]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestTelemetryCLI:
    """``repro jobs --follow`` and ``repro top`` against a live server."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.svc.server import VerificationServer

        with VerificationServer(
            tmp_path / "svc.sqlite",
            workers=1,
            worker_processes=False,
            worker_poll=0.02,
            sse_poll=0.02,
            trace_jobs=True,
        ) as server:
            yield server

    def _submit(self, server, netlist_text: str, method: str) -> int:
        import json
        import urllib.request

        request = urllib.request.Request(
            server.url + "/submit",
            data=json.dumps(
                {"netlist": netlist_text, "method": method}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=15) as response:
            return json.loads(response.read())["job_id"]

    def test_jobs_follow_streams_to_verdict(self, server, capsys):
        job_id = self._submit(
            server, serialize_netlist(handshake(True)), "pdr"
        )
        code = main(
            ["jobs", "--url", server.url, "--follow", str(job_id)]
        )
        out = capsys.readouterr().out
        assert code == 0  # proved
        assert "submitted" in out
        assert "job_finished" in out

    def test_jobs_follow_failed_property_exit_one(self, server, capsys):
        job_id = self._submit(
            server, serialize_netlist(handshake(False)), "bmc"
        )
        code = main(
            ["jobs", "--url", server.url, "--follow", str(job_id)]
        )
        assert code == 1
        assert "job_finished" in capsys.readouterr().out

    def test_follow_requires_url(self, tmp_path, capsys):
        store = str(tmp_path / "svc.sqlite")
        assert main(["jobs", "--store", store, "--follow", "1"]) == 2
        assert "--url" in capsys.readouterr().err

    def test_top_renders_dashboard(self, server, capsys):
        job_id = self._submit(
            server, serialize_netlist(handshake(True)), "pdr"
        )
        main(["jobs", "--url", server.url, "--follow", str(job_id)])
        capsys.readouterr()
        code = main(
            ["top", "--url", server.url, "--iterations", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "queue depth" in out
        assert "done=1" in out
        assert "proved" in out
