"""Tests for all-solutions enumeration (substrate of SAT-based pre-image)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat import CNF, enumerate_models, enumerate_projected_cubes
from repro.sat.dpll import brute_force_models
from repro.sat.enumeration import drop_literals_generalizer


class TestEnumerateModels:
    def test_counts_match_brute_force(self):
        f = CNF(3)
        f.add_clause([1, 2])
        f.add_clause([-2, 3])
        assert len(list(enumerate_models(f))) == len(brute_force_models(f))

    def test_unsat_yields_nothing(self):
        f = CNF(1)
        f.add_clause([1])
        f.add_clause([-1])
        assert list(enumerate_models(f)) == []

    def test_models_are_distinct(self):
        f = CNF(4)
        f.add_clause([1, 2, 3, 4])
        models = [tuple(m) for m in enumerate_models(f)]
        assert len(models) == len(set(models)) == 15

    def test_max_models_cap(self):
        f = CNF(4)  # empty formula: 16 models
        assert len(list(enumerate_models(f, max_models=5))) == 5

    def test_every_model_satisfies(self):
        f = CNF(3)
        f.add_clause([-1, 2])
        f.add_clause([-2, 3])
        for model in enumerate_models(f):
            assert f.evaluate(model)


class TestProjectedCubes:
    def test_projection_partitions_solutions(self):
        f = CNF(3)
        f.add_clause([1, 2])
        cubes = list(enumerate_projected_cubes(f, [1, 2]))
        # Solutions on (x1,x2): 01, 10, 11 -> three disjoint cubes.
        assert len(cubes) == 3
        assert len(set(cubes)) == 3

    def test_cubes_cover_all_models(self):
        f = CNF(3)
        f.add_clause([1, 3])
        f.add_clause([-1, 2])
        cubes = list(enumerate_projected_cubes(f, [1, 2]))
        for model in brute_force_models(f):
            covered = any(
                all(model[abs(lit) - 1] == (lit > 0) for lit in cube)
                for cube in cubes
            )
            assert covered, (model, cubes)

    def test_out_of_range_projection_var(self):
        f = CNF(2)
        f.add_clause([1])
        with pytest.raises(SatError):
            list(enumerate_projected_cubes(f, [5]))

    def test_max_cubes_cap(self):
        f = CNF(4)
        assert len(list(enumerate_projected_cubes(f, [1, 2, 3], max_cubes=2))) == 2

    def test_generalizer_shrinks_cubes(self):
        # f = x1: over projection (x1, x2) the generalized cube should drop x2.
        f = CNF(2)
        f.add_clause([1])

        def contained(cube):
            # A cube is inside the solution region iff it contains literal 1
            # (region is exactly x1=1).
            return 1 in cube

        gen = drop_literals_generalizer(contained)
        cubes = list(enumerate_projected_cubes(f, [1, 2], generalize=gen))
        assert cubes == [(1,)]

    def test_generalizer_must_not_return_empty(self):
        f = CNF(1)
        f.add_clause([1])
        with pytest.raises(SatError):
            list(enumerate_projected_cubes(f, [1], generalize=lambda s, c: ()))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=3,
        ),
        max_size=10,
    )
)
def test_enumeration_count_property(clauses):
    f = CNF(5)
    for clause in clauses:
        f.add_clause(clause)
    assert len(list(enumerate_models(f))) == len(brute_force_models(f))
