"""Tests for circuit-based quantifier elimination — the paper's core.

Correctness oracle throughout: existential quantification computed on
canonical BDDs must agree with every preset of the circuit-based engine.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, edge_not
from repro.aig.ops import and_all, or_, support, xor
from repro.bdd.from_aig import aig_to_bdd
from repro.bdd.manager import BddManager
from repro.circuits.combinational import (
    comparator,
    equality_with_constant_slices,
    mux_tree,
    parity,
    random_logic,
    ripple_adder,
)
from repro.core.merge import MergeOptions, merge_cofactors
from repro.core.quantify import (
    QuantifyOptions,
    quantify_exists,
    quantify_exists_one,
    quantify_forall,
)
from repro.errors import AigError
from tests.conftest import build_random_aig

PRESETS = ("shannon", "hash", "bdd", "sat", "full")


def bdd_reference_exists(aig, root, input_edges, quantified_nodes):
    manager = BddManager()
    var_map = {}
    for index, edge in enumerate(input_edges):
        manager.new_var()
        var_map[edge >> 1] = index
    bdd = aig_to_bdd(aig, root, manager, var_map)
    return manager, var_map, manager.exists(
        bdd, [var_map[n] for n in quantified_nodes]
    )


def assert_quantification_correct(aig, root, input_edges, quantified, preset):
    manager, var_map, reference = bdd_reference_exists(
        aig, root, input_edges, quantified
    )
    outcome = quantify_exists(
        aig, root, quantified, QuantifyOptions.preset(preset)
    )
    got = aig_to_bdd(aig, outcome.edge, manager, var_map)
    assert got == reference, preset
    return outcome


class TestCorrectnessAcrossPresets:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_random_logic(self, preset):
        aig, inputs, root = random_logic(6, 25, seed=41)
        assert_quantification_correct(
            aig, root, inputs, [e >> 1 for e in inputs[:3]], preset
        )

    @pytest.mark.parametrize("preset", PRESETS)
    def test_comparator(self, preset):
        aig, inputs, root = comparator(4)
        assert_quantification_correct(
            aig, root, inputs, [e >> 1 for e in inputs[:3]], preset
        )

    @pytest.mark.parametrize("preset", PRESETS)
    def test_parity(self, preset):
        aig, inputs, root = parity(6)
        assert_quantification_correct(
            aig, root, inputs, [e >> 1 for e in inputs[:2]], preset
        )

    def test_adder(self):
        aig, inputs, root = ripple_adder(4)
        assert_quantification_correct(
            aig, root, inputs, [e >> 1 for e in inputs[:4]], "full"
        )

    def test_mux_tree(self):
        aig, inputs, root = mux_tree(2)
        assert_quantification_correct(
            aig, root, inputs, [e >> 1 for e in inputs[:2]], "full"
        )

    def test_slices(self):
        aig, inputs, root = equality_with_constant_slices(3, 2)
        assert_quantification_correct(
            aig, root, inputs, [e >> 1 for e in inputs[:2]], "full"
        )


class TestAlgebraicIdentities:
    def test_quantified_vars_leave_support(self):
        aig, inputs, root = build_random_aig(5, 30, seed=42)
        target = inputs[1] >> 1
        outcome = quantify_exists(aig, root, [target])
        assert target not in support(aig, outcome.edge)

    def test_exists_of_independent_var_is_noop(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        outcome = quantify_exists(aig, f, [c >> 1])
        assert outcome.edge == f
        assert outcome.quantified == []

    def test_exists_or_distribution(self):
        # exists x (f OR g) == (exists x f) OR (exists x g)
        aig, inputs, f = build_random_aig(4, 15, seed=43)
        _, _, g_root = build_random_aig(4, 15, seed=44)
        # Rebuild g inside the same manager over the same inputs.
        import random as _random

        rng = _random.Random(44)
        nodes = list(inputs)
        for _ in range(15):
            x = rng.choice(nodes) ^ rng.randint(0, 1)
            y = rng.choice(nodes) ^ rng.randint(0, 1)
            nodes.append(aig.and_(x, y))
        g = nodes[-1] ^ rng.randint(0, 1)
        var = inputs[0] >> 1
        combined = quantify_exists(aig, or_(aig, f, g), [var]).edge
        separate = or_(
            aig,
            quantify_exists(aig, f, [var]).edge,
            quantify_exists(aig, g, [var]).edge,
        )
        from tests.conftest import edges_equivalent

        assert edges_equivalent(
            aig, combined, separate, [e >> 1 for e in inputs]
        )

    def test_forall_duality(self):
        aig, inputs, root = build_random_aig(4, 20, seed=45)
        var = inputs[2] >> 1
        forall = quantify_forall(aig, root, [var]).edge
        exists_not = edge_not(
            quantify_exists(aig, edge_not(root), [var]).edge
        )
        from tests.conftest import edges_equivalent

        assert edges_equivalent(
            aig, forall, exists_not, [e >> 1 for e in inputs]
        )

    def test_quantify_constant(self):
        aig = Aig()
        a = aig.add_input()
        assert quantify_exists(aig, TRUE, [a >> 1]).edge == TRUE
        assert quantify_exists(aig, FALSE, [a >> 1]).edge == FALSE

    def test_quantify_all_vars_gives_constant(self):
        aig, inputs, root = build_random_aig(4, 20, seed=46)
        outcome = quantify_exists(aig, root, [e >> 1 for e in inputs])
        assert outcome.edge in (TRUE, FALSE)
        # exists-all is TRUE iff the function is satisfiable.
        from repro.aig.simulate import truth_table

        satisfiable = truth_table(aig, root, [e >> 1 for e in inputs]) != 0
        assert (outcome.edge == TRUE) == satisfiable

    def test_unknown_preset_rejected(self):
        with pytest.raises(AigError):
            QuantifyOptions.preset("magic")

    def test_stats_reported(self):
        aig, inputs, root = build_random_aig(5, 25, seed=47)
        outcome = quantify_exists(aig, root, [inputs[0] >> 1])
        assert "final_size" in outcome.stats
        assert outcome.stats.get("vars_quantified") >= 0


class TestMergePhase:
    def test_merge_orders_equivalent_results(self):
        aig, inputs, root = equality_with_constant_slices(3, 2)
        var = inputs[0] >> 1
        from repro.aig.ops import cofactor

        cof0 = cofactor(aig, root, var, False)
        cof1 = cofactor(aig, root, var, True)
        for order in ("backward", "forward"):
            c0, c1, stats = merge_cofactors(
                aig, cof0, cof1, MergeOptions(order=order)
            )
            from tests.conftest import edges_equivalent

            nodes = [e >> 1 for e in inputs]
            assert edges_equivalent(aig, c0, cof0, nodes)
            assert edges_equivalent(aig, c1, cof1, nodes)

    def test_invalid_order_rejected(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        with pytest.raises(AigError):
            merge_cofactors(aig, a, b, MergeOptions(order="sideways"))

    def test_backward_cheaper_on_similar_cofactors(self):
        # The T3 shape claim in miniature: similar cofactors need fewer
        # SAT checks backward than forward.
        aig, inputs, root = equality_with_constant_slices(4, 3)
        var = inputs[0] >> 1
        from repro.aig.ops import cofactor

        cof0 = cofactor(aig, root, var, False)
        cof1 = cofactor(aig, root, var, True)
        _, _, backward_stats = merge_cofactors(
            aig, cof0, cof1,
            MergeOptions(order="backward", use_bdd_sweep=False),
        )
        _, _, forward_stats = merge_cofactors(
            aig, cof0, cof1,
            MergeOptions(order="forward", use_bdd_sweep=False),
        )
        assert backward_stats.get("merge_sat_checks") <= forward_stats.get(
            "merge_sat_checks"
        )


class TestSizeContainment:
    def test_full_no_worse_than_shannon_on_families(self):
        for build, args in (
            (comparator, (5,)),
            (ripple_adder, (5,)),
            (equality_with_constant_slices, (3, 3)),
        ):
            aig_s, inputs_s, root_s = build(*args)
            shannon = quantify_exists(
                aig_s, root_s,
                [e >> 1 for e in inputs_s[:4]],
                QuantifyOptions.preset("shannon"),
            )
            aig_f, inputs_f, root_f = build(*args)
            full = quantify_exists(
                aig_f, root_f,
                [e >> 1 for e in inputs_f[:4]],
                QuantifyOptions.preset("full"),
            )
            assert aig_f.cone_and_count(full.edge) <= aig_s.cone_and_count(
                shannon.edge
            )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_quantified=st.integers(min_value=1, max_value=3),
    preset=st.sampled_from(["shannon", "hash", "full"]),
)
def test_quantification_matches_bdd_property(seed, num_quantified, preset):
    aig, inputs, root = build_random_aig(4, 18, seed=seed)
    quantified = [e >> 1 for e in inputs[:num_quantified]]
    assert_quantification_correct(aig, root, inputs, quantified, preset)
