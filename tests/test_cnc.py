"""Tests for the cube-and-conquer engine (:mod:`repro.cnc`).

The load-bearing claims, each checked by SAT or exhaustive simulation:

* the SWAR ternary lookahead matches its scalar reference on random
  circuits;
* ``assume_literal`` is pointwise ``target AND (gate == value)``;
* a cube tree's leaves *partition* the space — pairwise contradictory
  and jointly covering (hypothesis property, discharged by SAT);
* ``split_solve`` agrees with a monolithic solver, and its SAT models
  satisfy the original target;
* the registered ``cnc`` engine never contradicts bmc/pdr on the tier-1
  families, and its counterexamples replay through standard validation;
* the split machinery reached through equivalence checking, sweeping and
  PDR certificate validation gives the verdicts of the plain paths.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.cnf import CnfMapper
from repro.aig.graph import FALSE, Aig, edge_not
from repro.aig.ops import and_all
from repro.aig.simulate import cone_plan, eval_edge
from repro.atpg.equivalence import check_equal_via_atpg
from repro.circuits import generators as G
from repro.circuits.library import handshake, mul_miter2
from repro.cnc import (
    CncOptions,
    analyze,
    assume_literal,
    build_cube_tree,
    split_solve,
    split_solve_many,
    ternary_eval,
    ternary_lookahead,
)
from repro.errors import CertificateError, ModelCheckingError
from repro.mc.engine import verify
from repro.mc.result import Status
from repro.pdr.certify import check_certificate
from repro.sat.solver import Solver, SolveResult
from repro.sweep.satsweep import prove_edges_equivalent
from repro.util.stats import StatsBag
from tests.conftest import build_random_aig


def solve_edge(aig, edge):
    """Monolithic SAT verdict for one edge (the oracle)."""
    if edge == FALSE:
        return SolveResult.UNSAT
    mapper = CnfMapper(aig, Solver())
    return mapper.solver.solve([mapper.lit_for(edge)])


def cube_edge(aig, leaf):
    """A leaf's cube as one conjunction edge."""
    return and_all(aig, [lit.edge for lit in leaf.literals])


# ---------------------------------------------------------------------- #
# Lookahead
# ---------------------------------------------------------------------- #


class TestLookahead:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_swar_matches_scalar_reference(self, seed):
        aig, inputs, root = build_random_aig(4, 12, seed)
        plan = cone_plan(aig, (root,))
        rng = random.Random(seed)
        nodes = [node for _index, node in plan.inputs] + [
            plan.nodes[dst] for dst, *_rest in plan.ops
        ]
        if not nodes:  # the random cone folded to a constant
            return
        trials = [
            (rng.choice(nodes), rng.randint(0, 1)) for _ in range(7)
        ]
        lanes = ternary_lookahead(plan, root, trials)
        for (node, value), lane in zip(trials, lanes):
            assert lane == ternary_eval(plan, root, {node: value})

    def test_analyze_never_picks_the_root_or_assigned_nodes(self):
        aig, inputs, root = build_random_aig(4, 15, seed=7)
        exclude = [inputs[0] >> 1]
        look = analyze(aig, root, exclude=exclude)
        if look.gate is not None:
            assert look.gate != root >> 1
            assert look.gate not in exclude

    def test_refutation_is_sound(self):
        # A refuted/forced verdict must match the SAT truth: when the
        # lookahead says value v for gate g kills the target, then
        # target AND (g == v) really is UNSAT.
        for seed in range(25):
            aig, inputs, root = build_random_aig(3, 10, seed)
            look = analyze(aig, root)
            if look.refuted:
                assert solve_edge(aig, root) is SolveResult.UNSAT
            for node, value in look.forced:
                refuted = assume_literal(aig, root, node, not value)
                assert solve_edge(aig, refuted) is SolveResult.UNSAT


# ---------------------------------------------------------------------- #
# Cube stage
# ---------------------------------------------------------------------- #


class TestCubeStage:
    def test_assume_literal_is_pointwise_conjunction(self):
        aig, inputs, root = build_random_aig(4, 12, seed=11)
        gates = [dst for dst in range(aig.num_nodes) if aig.is_and(dst)]
        gate = gates[len(gates) // 2]
        for value in (True, False):
            assumed = assume_literal(aig, root, gate, value)
            for bits in range(16):
                assignment = {
                    node >> 1: bool(bits >> k & 1)
                    for k, node in enumerate(inputs)
                }
                expected = eval_edge(aig, root, assignment) and (
                    eval_edge(aig, 2 * gate, assignment) == value
                )
                assert eval_edge(aig, assumed, assignment) == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_leaves_partition_the_space(self, seed):
        aig, inputs, root = build_random_aig(4, 14, seed)
        tree = build_cube_tree(aig, root, cube_depth=3)
        leaves = tree.leaves
        assert leaves
        # Covering: no model of the target escapes every leaf cube.
        escape = root
        for leaf in leaves:
            escape = aig.and_(escape, edge_not(cube_edge(aig, leaf)))
        assert solve_edge(aig, escape) is SolveResult.UNSAT
        # Pairwise contradictory: two distinct cubes share no model.
        for i, first in enumerate(leaves):
            for second in leaves[i + 1:]:
                both = aig.and_(
                    cube_edge(aig, first), cube_edge(aig, second)
                )
                assert solve_edge(aig, both) is SolveResult.UNSAT

    def test_leaf_target_is_root_restricted_to_the_cube(self):
        aig, inputs, root = build_random_aig(4, 14, seed=3)
        tree = build_cube_tree(aig, root, cube_depth=2)
        for leaf in tree.open_leaves:
            restricted = aig.and_(root, cube_edge(aig, leaf))
            difference = aig.and_(leaf.target, edge_not(restricted))
            assert solve_edge(aig, difference) is SolveResult.UNSAT
            reverse = aig.and_(restricted, edge_not(leaf.target))
            assert solve_edge(aig, reverse) is SolveResult.UNSAT

    def test_refuted_leaves_really_are_unsat(self):
        for seed in (0, 5, 9):
            aig, inputs, root = build_random_aig(4, 14, seed)
            tree = build_cube_tree(aig, root, cube_depth=3)
            for leaf in tree.leaves:
                if leaf.refuted:
                    restricted = aig.and_(root, cube_edge(aig, leaf))
                    assert solve_edge(aig, restricted) is SolveResult.UNSAT

    def test_cube_counters(self):
        aig, inputs, root = build_random_aig(5, 20, seed=1)
        bag = StatsBag()
        tree = build_cube_tree(aig, root, cube_depth=3, stats=bag)
        assert bag.get("cnc_cube_leaves") == len(tree.leaves)
        assert bag.get("cnc_cube_splits") == tree.splits
        assert len(tree.open_leaves) + tree.refuted_leaves == len(tree.leaves)


# ---------------------------------------------------------------------- #
# split_solve
# ---------------------------------------------------------------------- #


class TestSplitSolve:
    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_monolithic_solver(self, seed):
        aig, inputs, root = build_random_aig(5, 18, seed)
        expected = solve_edge(aig, root)
        outcome = split_solve(aig, root, cube_depth=3)
        assert outcome.verdict is expected
        if expected is SolveResult.SAT:
            assignment = {node >> 1: False for node in inputs}
            assignment.update(outcome.model)
            assert eval_edge(aig, root, assignment)

    def test_constant_false_target(self):
        aig = Aig()
        aig.add_inputs(2)
        outcome = split_solve(aig, FALSE)
        assert outcome.verdict is SolveResult.UNSAT

    def test_split_solve_many_groups_are_independent(self):
        aig, inputs, root = build_random_aig(5, 18, seed=4)
        contradiction = aig.and_(root, edge_not(root))
        outcomes = split_solve_many(
            aig, [root, contradiction, edge_not(root)], cube_depth=2
        )
        assert outcomes[1].verdict is SolveResult.UNSAT
        for outcome, target in zip(outcomes, (root, None, edge_not(root))):
            if outcome.verdict is SolveResult.SAT:
                assignment = {node >> 1: False for node in inputs}
                assignment.update(outcome.model)
                assert eval_edge(aig, target, assignment)

    def test_unsat_miter_exercises_core_pruning_counters(self):
        netlist = mul_miter2(True)
        bag = StatsBag()
        outcome = split_solve(
            netlist.aig,
            edge_not(netlist.property_edge),
            cube_depth=4,
            stats=bag,
        )
        assert outcome.verdict is SolveResult.UNSAT
        solved = (
            bag.get("cnc_cubes_unsat")
            + bag.get("cnc_cubes_pruned")
            + bag.get("cnc_cubes_cancelled")
        )
        assert solved == outcome.cubes - outcome.refuted


# ---------------------------------------------------------------------- #
# The registered engine
# ---------------------------------------------------------------------- #

FAMILIES = [
    lambda safe: G.mod_counter(4, 12, safe=safe),
    lambda safe: handshake(safe),
    lambda safe: G.johnson_counter(4, safe=safe),
    lambda safe: mul_miter2(safe),
]


class TestCncEngine:
    @pytest.mark.parametrize("build", FAMILIES)
    def test_never_contradicts_bmc_and_pdr(self, build):
        for safe in (True, False):
            netlist = build(safe)
            result = verify(
                netlist, method="cnc", max_depth=16, workers=0
            )
            reference = verify(build(safe), method="pdr", max_depth=16)
            if safe:
                # A bounded engine may return UNKNOWN on safe designs
                # (or PROVED on combinational ones) but never FAILED.
                assert result.status is not Status.FAILED
                assert reference.status is Status.PROVED
            else:
                assert result.status is Status.FAILED
                assert reference.status is Status.FAILED
                assert result.trace.validate(build(safe))
                bmc_result = verify(
                    build(safe), method="bmc", max_depth=16
                )
                assert bmc_result.status is Status.FAILED

    def test_combinational_miter_is_proved_not_unknown(self):
        result = verify(mul_miter2(True), method="cnc", workers=0)
        assert result.status is Status.PROVED
        assert result.stats.get("cnc_bound") == 0

    def test_multiprocessing_workers_path(self):
        result = verify(
            G.mod_counter(4, 12, safe=False),
            method="cnc",
            max_depth=16,
            workers=2,
        )
        assert result.status is Status.FAILED
        assert result.stats.get("cnc_workers") == 2
        assert result.trace.validate(G.mod_counter(4, 12, safe=False))

    def test_stats_report_cube_accounting(self):
        result = verify(
            handshake(False), method="cnc", max_depth=10, workers=0
        )
        assert result.status is Status.FAILED
        assert result.stats.get("cnc_cubes") >= 1
        assert result.stats.get("cnc_refuted_by_lookahead") >= 0

    def test_options_validate(self):
        with pytest.raises(ModelCheckingError):
            CncOptions(workers=-1).validate()
        with pytest.raises(ModelCheckingError):
            CncOptions(cube_depth=-2).validate()
        with pytest.raises(ModelCheckingError):
            CncOptions(candidates_limit=0).validate()

    def test_engine_is_registered_and_a_portfolio_default(self):
        from repro.api.registry import engine_names
        from repro.portfolio.policy import default_engines

        assert "cnc" in engine_names()
        assert "cnc" in default_engines()


# ---------------------------------------------------------------------- #
# split_solve consumers: equivalence, sweeping, certificates
# ---------------------------------------------------------------------- #


class TestSplitSolveConsumers:
    def test_equivalence_via_cnc_agrees_with_sat_engine(self):
        netlist = mul_miter2(True)
        aig = netlist.aig
        verdict, cex = check_equal_via_atpg(
            aig, netlist.property_edge, 1, engine="cnc"
        )
        assert verdict is True and cex is None
        buggy = mul_miter2(False)
        verdict, cex = check_equal_via_atpg(
            buggy.aig, buggy.property_edge, 1, engine="cnc"
        )
        assert verdict is False
        assert not eval_edge(buggy.aig, buggy.property_edge, cex)

    def test_prove_edges_equivalent_split_path(self):
        netlist = mul_miter2(True)
        verdict, cex = prove_edges_equivalent(
            netlist.aig, netlist.property_edge, 1, split_workers=0
        )
        assert verdict is True and cex is None
        buggy = mul_miter2(False)
        verdict, cex = prove_edges_equivalent(
            buggy.aig, buggy.property_edge, 1, split_workers=0
        )
        assert verdict is False
        assert not eval_edge(buggy.aig, buggy.property_edge, cex)

    def test_certificate_batch_accepts_a_real_invariant(self):
        result = verify(handshake(True), method="pdr", max_depth=30)
        assert result.status is Status.PROVED
        check_certificate(handshake(True), result.certificate,
                          split_workers=0)

    def test_certificate_batch_rejects_a_wrong_invariant(self):
        # The safe design's invariant cannot certify the buggy variant:
        # the split path must reject it just like the Unroller path.
        result = verify(handshake(True), method="pdr", max_depth=30)
        with pytest.raises(CertificateError):
            check_certificate(handshake(False), result.certificate,
                              split_workers=0)
