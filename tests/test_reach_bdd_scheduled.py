"""Scheduled partitioned BDD image computation vs the monolithic baseline.

The scheduled pipeline must be a pure optimization: identical images,
identical verdicts, identical iteration counts — only faster.  Random
netlists use a fixed seed so failures reproduce.
"""

import random

import pytest

from repro.circuits import generators as G
from repro.circuits.netlist import Netlist
from repro.core.images import ImageComputer
from repro.core.schedule import (
    ImageStep,
    plan_partitioned_quantification,
    schedule_variable_order,
    scheduler_names,
)
from repro.errors import ModelCheckingError
from repro.mc import verify
from repro.mc.reach_bdd import BddReachOptions, _BddModel
from repro.mc.result import Status

SEED = 20050308


def random_netlist(seed, num_latches=3, num_inputs=2, num_gates=10):
    """A small random sequential circuit with a random latch invariant."""
    rng = random.Random(seed)
    netlist = Netlist(f"random_{seed}")
    inputs = [netlist.add_input(f"i{k}") for k in range(num_inputs)]
    latches = [
        netlist.add_latch(f"l{k}", init=bool(rng.randint(0, 1)))
        for k in range(num_latches)
    ]
    aig = netlist.aig
    pool = inputs + latches
    for _ in range(num_gates):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    for latch in latches:
        netlist.set_next(latch, rng.choice(pool) ^ rng.randint(0, 1))
    candidates = latches + pool[len(inputs) + len(latches):]
    netlist.set_property(rng.choice(candidates) ^ rng.randint(0, 1))
    netlist.validate()
    return netlist


class TestPlan:
    def test_plan_covers_all_variables_and_partitions(self):
        order = [3, 1, 2]
        supports = [{1, 2}, {3}, {2}, set()]
        plan = plan_partitioned_quantification(order, supports)
        conjoined = [c for step in plan for c in step.conjoin]
        quantified = [v for step in plan for v in step.quantify]
        assert sorted(conjoined) == [0, 1, 2, 3]
        assert sorted(quantified) == [1, 2, 3]

    def test_no_variable_quantified_before_its_partitions(self):
        order = [0, 1, 2, 3]
        supports = [{0, 1}, {1, 2}, {2, 3}]
        plan = plan_partitioned_quantification(order, supports)
        seen: set = set()
        for step in plan:
            seen.update(step.conjoin)
            for var in step.quantify:
                holders = {
                    c for c, s in enumerate(supports) if var in s
                }
                assert holders <= seen, (var, step)

    def test_unsupported_variables_are_freed_immediately(self):
        plan = plan_partitioned_quantification([5], [set()])
        assert plan == [ImageStep((), (5,)), ImageStep((0,), ())]

    def test_schedule_variable_order_is_a_permutation(self):
        net = G.mod_counter(4, 10)
        variables = net.latch_nodes + net.input_nodes
        edge = net.property_edge
        for name in scheduler_names():
            order = schedule_variable_order(net.aig, edge, variables, name)
            assert sorted(order) == sorted(variables), name


class TestScheduledPostimageEquivalence:
    """Scheduled and monolithic images are the same BDD node."""

    @pytest.mark.parametrize("seed", range(SEED, SEED + 12))
    def test_random_netlists(self, seed):
        net = random_netlist(seed)
        model = _BddModel(net, BddReachOptions())
        manager = model.manager
        frontier = reached = model.init
        for _ in range(6):
            scheduled = model.postimage_scheduled(frontier)
            monolithic = model.postimage_monolithic(frontier)
            assert scheduled == monolithic
            frontier = manager.and_(scheduled, manager.not_(reached))
            reached = manager.or_(reached, frontier)
            if frontier == 0:
                break

    @pytest.mark.parametrize(
        "name,build",
        [
            ("mod_counter", lambda: G.mod_counter(4, 10)),
            ("gray", lambda: G.gray_counter(4)),
            ("arbiter", lambda: G.arbiter(3)),
            ("fifo", lambda: G.fifo_level(3)),
        ],
    )
    def test_generator_designs(self, name, build):
        model = _BddModel(build(), BddReachOptions())
        manager = model.manager
        frontier = model.init
        for _ in range(4):
            scheduled = model.postimage_scheduled(frontier)
            assert scheduled == model.postimage_monolithic(frontier), name
            frontier = scheduled

    @pytest.mark.parametrize("schedule", ["static", "min_dependence",
                                          "min_level", "cofactor_probe"])
    def test_every_schedule_agrees(self, schedule):
        net = G.up_down_counter(4)
        model = _BddModel(net, BddReachOptions(schedule=schedule))
        reference = _BddModel(net, BddReachOptions(image="monolithic"))
        frontier_s = model.init
        frontier_m = reference.init
        for _ in range(4):
            frontier_s = model.postimage(frontier_s)
            frontier_m = reference.postimage(frontier_m)
            # Different managers: compare by satisfying-set counts and
            # structural size (both canonical per manager).
            assert (
                model.manager.sat_count(frontier_s, 10)
                == reference.manager.sat_count(frontier_m, 10)
            )


class TestVerifyIntegration:
    @pytest.mark.parametrize("image", ["scheduled", "monolithic"])
    def test_forward_verdicts_match(self, image):
        safe = verify(
            G.gray_counter(4), method="reach_bdd_fwd", max_depth=100,
            image=image,
        )
        assert safe.status is Status.PROVED
        buggy = verify(
            G.mod_counter(4, 10, safe=False),
            method="reach_bdd_fwd",
            max_depth=100,
            image=image,
        )
        assert buggy.status is Status.FAILED
        assert buggy.trace is not None

    def test_schedule_option_reaches_engine(self):
        result = verify(
            G.ring_counter(5),
            method="reach_bdd_fwd",
            max_depth=100,
            schedule="min_level",
        )
        assert result.status is Status.PROVED

    def test_options_object_accepted(self):
        options = BddReachOptions(max_iterations=100, image="monolithic")
        result = verify(
            G.ring_counter(4), method="reach_bdd", options=options
        )
        assert result.status is Status.PROVED

    def test_unknown_image_mode_rejected(self):
        with pytest.raises(ModelCheckingError):
            verify(G.ring_counter(4), method="reach_bdd_fwd", image="bogus")

    def test_cache_counters_surface_in_stats(self):
        result = verify(
            G.mod_counter(4, 10), method="reach_bdd", max_depth=100
        )
        assert result.stats.get("bdd_cache_hits") > 0
        assert 0.0 < result.stats.get("bdd_cache_hit_rate") <= 1.0
        assert result.stats.get("manager_nodes") > 0

    def test_random_verdicts_agree_across_modes(self):
        for seed in range(SEED, SEED + 8):
            net = random_netlist(seed)
            results = [
                verify(net, method="reach_bdd_fwd", max_depth=64, image=mode)
                for mode in ("scheduled", "monolithic")
            ]
            assert results[0].status is results[1].status, seed
            assert results[0].iterations == results[1].iterations, seed


class TestScheduledAigPostimage:
    """The AIG image computer follows the same plan — semantics unchanged."""

    @pytest.mark.parametrize("seed", range(SEED, SEED + 6))
    def test_random_netlists(self, seed):
        from repro.aig.simulate import eval_edge

        net = random_netlist(seed)
        scheduled = ImageComputer(net, schedule_image=True)
        monolithic = ImageComputer(net, schedule_image=False)
        state = net.init_state_edge()
        image_s = scheduled.postimage(state).edge
        image_m = monolithic.postimage(state).edge
        for bits in range(1 << len(net.latch_nodes)):
            assignment = {
                node: bool((bits >> k) & 1)
                for k, node in enumerate(net.latch_nodes)
            }
            assert eval_edge(scheduled.aig, image_s, assignment) == eval_edge(
                monolithic.aig, image_m, assignment
            ), (seed, bits)


class TestDeepChainCircuit:
    def test_long_latch_chain_does_not_overflow_recursion(self):
        """1200-deep AND cone used to blow Python's recursion limit."""
        width = 1200
        netlist = Netlist("deep_chain")
        latches = [
            netlist.add_latch(f"l{k}", init=False) for k in range(width)
        ]
        for latch in latches:
            netlist.set_next(latch, 0)   # constant FALSE next state
        # Right-associated so the BDD builds bottom-up in linear time; the
        # negation/compose recursions still descend all 1200 levels.
        conjunction = 1
        for latch in reversed(latches):
            conjunction = netlist.aig.and_(latch, conjunction)
        netlist.set_property(conjunction ^ 1)   # NOT(all latches) — safe
        netlist.validate()
        result = verify(netlist, method="reach_bdd", max_depth=4)
        assert result.status is Status.PROVED
