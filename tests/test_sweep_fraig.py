"""Tests for FRAIG functional reduction (sweep + garbage collection)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import Aig, edge_not
from repro.aig.ops import or_, transfer, xor
from repro.errors import AigError
from repro.sweep.fraig import fraig, fraig_in_place
from tests.conftest import build_random_aig, edges_equivalent


def _equivalent_across_managers(old_aig, old_edge, result, inputs):
    """Compare an old-manager edge against its fraiged counterpart."""
    # Transfer the new-manager root back into the old manager using the
    # inverse of the input map, then use the BDD oracle.
    inverse = {new: 2 * old for old, new in result.node_map.items()}
    back = transfer(result.aig, result.edges[0], old_aig, inverse)
    return edges_equivalent(
        old_aig, old_edge, back, [e >> 1 for e in inputs]
    )


class TestFraig:
    @pytest.mark.parametrize("engine", ["cnf", "circuit"])
    def test_function_preserved(self, engine):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=40, seed=2
        )
        result = fraig(aig, [root], engine=engine)
        assert _equivalent_across_managers(aig, root, result, inputs)

    def test_redundant_logic_disappears(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = or_(aig, aig.and_(a, b), aig.and_(a, c))
        g = aig.and_(a, or_(aig, b, c))     # same function, other shape
        both = xor(aig, f, g)               # constant FALSE
        root = or_(aig, f, aig.and_(both, c))
        result = fraig(aig, [root])
        # root == f; everything reachable only through `both` must be gone.
        assert result.size <= aig.cone_and_count(f)

    def test_size_never_grows(self):
        for seed in range(8):
            aig, _, root = build_random_aig(
                num_inputs=6, num_gates=60, seed=seed
            )
            before = aig.cone_and_count(root)
            result = fraig(aig, [root])
            assert result.size <= before
            assert result.stats.get("size_after") <= result.stats.get(
                "size_before"
            )

    def test_multiple_roots_share_logic(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = edge_not(aig.and_(edge_not(a), edge_not(b)))
        result = fraig(aig, [f, g])
        assert len(result.edges) == 2
        assert result.aig.num_inputs == 2

    def test_keep_all_inputs(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)  # c unused
        slim = fraig(aig, [f])
        fat = fraig(aig, [f], keep_all_inputs=True)
        assert slim.aig.num_inputs == 2
        assert fat.aig.num_inputs == 3

    def test_unknown_engine_rejected(self):
        aig = Aig()
        a = aig.add_input()
        with pytest.raises(AigError):
            fraig(aig, [a], engine="bdd")

    def test_node_map_covers_live_inputs(self):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=30, seed=9
        )
        result = fraig(aig, [root])
        for old_node, new_node in result.node_map.items():
            assert aig.is_input(old_node)
            assert result.aig.is_input(new_node)
            assert aig.input_name(old_node) == result.aig.input_name(new_node)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_fraig_preserves_function(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=25, seed=seed
        )
        result = fraig(aig, [root])
        assert _equivalent_across_managers(aig, root, result, inputs)


class TestFraigInPlace:
    def test_edges_stay_valid_in_same_manager(self):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=40, seed=4
        )
        (new_root,), stats = fraig_in_place(aig, [root])
        assert edges_equivalent(
            aig, root, new_root, [e >> 1 for e in inputs]
        )
        assert stats.get("size_after") <= stats.get("size_before")

    def test_circuit_engine_in_place(self):
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=25, seed=6
        )
        (new_root,), _ = fraig_in_place(aig, [root], engine="circuit")
        assert edges_equivalent(
            aig, root, new_root, [e >> 1 for e in inputs]
        )

    def test_unknown_engine_rejected(self):
        aig = Aig()
        a = aig.add_input()
        with pytest.raises(AigError):
            fraig_in_place(aig, [a], engine="nope")
