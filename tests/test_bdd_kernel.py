"""Kernel-level tests for the rewritten BDD manager.

Covers the fused ``and_exists`` operator, cube-directed multi-variable
quantification, the ITE terminal simplifications, the tagged/bounded
operation caches, and the deep-chain recursion guard.  Randomized checks
use a fixed seed so failures reproduce.
"""

import itertools
import random

import pytest

from repro.bdd.manager import BDD_FALSE, BDD_TRUE, BddManager

SEED = 20050307
NUM_VARS = 6


def random_bdd(mgr, rng, depth=12):
    """A random function over the manager's variables (op-DAG walk)."""
    pool = [mgr.var_node(i) for i in range(mgr.num_vars)]
    for _ in range(depth):
        op = rng.choice(("and", "or", "xor", "not", "ite"))
        a, b, c = (rng.choice(pool) for _ in range(3))
        if op == "and":
            pool.append(mgr.and_(a, b))
        elif op == "or":
            pool.append(mgr.or_(a, b))
        elif op == "xor":
            pool.append(mgr.xor(a, b))
        elif op == "not":
            pool.append(mgr.not_(a))
        else:
            pool.append(mgr.ite(a, b, c))
    return pool[-1]


class TestAndExists:
    """and_exists(f, g, V) must equal exists(f AND g, V) — always."""

    def test_randomized_equivalence(self):
        rng = random.Random(SEED)
        mgr = BddManager()
        for _ in range(NUM_VARS):
            mgr.new_var()
        for _ in range(60):
            f = random_bdd(mgr, rng)
            g = random_bdd(mgr, rng)
            variables = [
                v for v in range(NUM_VARS) if rng.random() < 0.5
            ]
            fused = mgr.and_exists(f, g, variables)
            reference = mgr.exists(mgr.and_(f, g), variables)
            assert fused == reference

    def test_terminal_cases(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        f = mgr.and_(x, y)
        assert mgr.and_exists(BDD_FALSE, f, [0]) == BDD_FALSE
        assert mgr.and_exists(f, BDD_FALSE, [0]) == BDD_FALSE
        assert mgr.and_exists(f, BDD_TRUE, [1]) == x
        assert mgr.and_exists(f, f, [1]) == x
        # Empty cube degrades to plain conjunction.
        assert mgr.and_exists(x, y, []) == mgr.and_(x, y)

    def test_complement_conjuncts_are_false(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        f = mgr.xor(x, y)
        assert mgr.and_exists(f, mgr.not_(f), [0, 1]) == BDD_FALSE

    def test_prebuilt_cube_variant(self):
        mgr = BddManager()
        x, y, z = mgr.new_var(), mgr.new_var(), mgr.new_var()
        cube = mgr.cube_pos([1, 2])
        f = mgr.and_(x, mgr.or_(y, z))
        assert mgr.and_exists_cube(f, BDD_TRUE, cube) == x
        assert mgr.exists_cube(f, cube) == x


class TestCubeQuantification:
    def test_exists_matches_per_variable_reference(self):
        """One cube-directed recursion == the old one-var-at-a-time loop."""
        rng = random.Random(SEED + 1)
        mgr = BddManager()
        for _ in range(NUM_VARS):
            mgr.new_var()
        for _ in range(40):
            f = random_bdd(mgr, rng)
            variables = [v for v in range(NUM_VARS) if rng.random() < 0.4]
            reference = f
            for var in sorted(variables, reverse=True):
                reference = mgr.or_(
                    mgr.restrict(reference, var, False),
                    mgr.restrict(reference, var, True),
                )
            assert mgr.exists(f, variables) == reference

    def test_cube_pos_is_a_positive_cube(self):
        mgr = BddManager()
        for _ in range(4):
            mgr.new_var()
        cube = mgr.cube_pos([0, 2, 3])
        assert mgr.evaluate(cube, {0: True, 1: False, 2: True, 3: True})
        assert not mgr.evaluate(cube, {0: True, 1: True, 2: False, 3: True})

    def test_forall_duality_still_holds(self):
        mgr = BddManager()
        x, y, z = mgr.new_var(), mgr.new_var(), mgr.new_var()
        f = mgr.ite(x, y, mgr.not_(z))
        lhs = mgr.forall(f, [0, 2])
        rhs = mgr.not_(mgr.exists(mgr.not_(f), [0, 2]))
        assert lhs == rhs


class TestIteSimplifications:
    def setup_method(self):
        self.mgr = BddManager()
        self.x = self.mgr.new_var()
        self.y = self.mgr.new_var()
        self.z = self.mgr.new_var()

    def test_g_equals_f_collapses_to_or(self):
        f = self.mgr.and_(self.x, self.y)
        assert self.mgr.ite(f, f, self.z) == self.mgr.or_(f, self.z)

    def test_h_equals_f_collapses_to_and(self):
        f = self.mgr.or_(self.x, self.y)
        assert self.mgr.ite(f, self.z, f) == self.mgr.and_(f, self.z)

    def test_complement_then_branch(self):
        f = self.mgr.xor(self.x, self.y)
        not_f = self.mgr.not_(f)
        assert self.mgr.ite(f, not_f, self.z) == self.mgr.and_(not_f, self.z)

    def test_complement_else_branch(self):
        f = self.mgr.xor(self.x, self.y)
        not_f = self.mgr.not_(f)
        assert self.mgr.ite(f, self.z, not_f) == self.mgr.or_(not_f, self.z)

    def test_negation_via_ite(self):
        f = self.mgr.and_(self.x, self.z)
        assert self.mgr.ite(f, BDD_FALSE, BDD_TRUE) == self.mgr.not_(f)

    def test_two_operand_forms_share_tagged_caches(self):
        """Simplified ITE calls must not populate the ITE cache at all."""
        f = self.mgr.and_(self.x, self.y)
        baseline = self.mgr.cache_stats()["ite"]["entries"]
        self.mgr.ite(f, f, self.z)           # or-form
        self.mgr.ite(f, self.z, f)           # and-form
        self.mgr.ite(f, self.z, BDD_FALSE)   # and-form
        self.mgr.ite(f, BDD_TRUE, self.z)    # or-form
        assert self.mgr.cache_stats()["ite"]["entries"] == baseline

    def test_exhaustive_against_semantics(self):
        rng = random.Random(SEED + 2)
        mgr = BddManager()
        for _ in range(3):
            mgr.new_var()
        for _ in range(50):
            f, g, h = (random_bdd(mgr, rng, depth=5) for _ in range(3))
            result = mgr.ite(f, g, h)
            for values in itertools.product([False, True], repeat=3):
                assignment = dict(enumerate(values))
                expected = (
                    mgr.evaluate(g, assignment)
                    if mgr.evaluate(f, assignment)
                    else mgr.evaluate(h, assignment)
                )
                assert mgr.evaluate(result, assignment) == expected


class TestCacheDiscipline:
    def test_cache_stats_shape(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        mgr.and_(x, y)
        mgr.and_(x, y)
        stats = mgr.cache_stats()
        assert stats["and"]["hits"] >= 1
        assert stats["and"]["misses"] >= 1
        assert stats["and"]["entries"] >= 1
        summary = mgr.cache_summary()
        assert summary["cache_hits"] >= 1
        assert 0.0 < summary["cache_hit_rate"] <= 1.0

    def test_clear_caches_keeps_nodes_valid(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        f = mgr.and_(x, y)
        mgr.clear_caches()
        assert mgr.cache_summary()["cache_entries"] == 0
        assert mgr.and_(x, y) == f   # unique table untouched: same node

    def test_bounded_caches_reset(self):
        rng = random.Random(SEED + 3)
        mgr = BddManager(max_cache_entries=8)
        for _ in range(6):
            mgr.new_var()
        for _ in range(30):
            random_bdd(mgr, rng)
        stats = mgr.cache_stats()
        for op_stats in stats.values():
            assert op_stats["entries"] <= 8
        assert mgr.cache_summary()["cache_resets"] > 0

    def test_trim_caches(self):
        mgr = BddManager()
        rng = random.Random(SEED + 4)
        for _ in range(6):
            mgr.new_var()
        for _ in range(10):
            random_bdd(mgr, rng)
        assert mgr.trim_caches() == 0        # no bound configured: no-op
        cleared = mgr.trim_caches(bound=0)   # explicit bound clears non-empty
        assert cleared > 0
        assert mgr.cache_summary()["cache_entries"] == 0

    def test_trim_fires_between_steps_below_hard_bound(self):
        """The between-steps trim must act below the _cache_put bound."""
        rng = random.Random(SEED + 5)
        mgr = BddManager(max_cache_entries=80)
        for _ in range(8):
            mgr.new_var()
        for _ in range(60):
            random_bdd(mgr, rng)
        stats = mgr.cache_stats()
        assert any(s["entries"] > 20 for s in stats.values())
        assert mgr.trim_caches() > 0         # defaults to hard bound / 4
        stats = mgr.cache_stats()
        assert all(s["entries"] <= 20 for s in stats.values())


class TestDeepChains:
    """Deep chain circuits must not hit Python's recursion limit."""

    def test_deep_conjunction_chain(self):
        mgr = BddManager()
        width = 2500
        variables = [mgr.new_var() for _ in range(width)]
        # Bottom-up conjunction keeps construction linear; the recursions
        # below still descend the full 2500-variable chain.
        acc = BDD_TRUE
        for var in reversed(variables):
            acc = mgr.and_(var, acc)
        assert mgr.size(acc) == width
        # Quantify out every other variable in one cube-directed pass.
        remaining = mgr.exists(acc, list(range(0, width, 2)))
        assert mgr.size(remaining) == width // 2
        assert mgr.not_(mgr.not_(acc)) == acc

    def test_deep_fused_relational_product(self):
        mgr = BddManager()
        width = 1500
        for _ in range(width):
            mgr.new_var()
        f = mgr.cube_pos(range(width // 2))
        g = mgr.cube_pos(range(width // 2, width))
        image = mgr.and_exists(f, g, list(range(width // 2)))
        assert image == g


class TestRename:
    def test_order_preserving_rename_is_exact(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        z, w = mgr.new_var(), mgr.new_var()
        f = mgr.and_(x, mgr.not_(y))
        renamed = mgr.rename(f, {0: 2, 1: 3})
        assert renamed == mgr.and_(z, mgr.not_(w))

    def test_order_reversing_rename_falls_back(self):
        mgr = BddManager()
        x, y = mgr.new_var(), mgr.new_var()
        f = mgr.and_(x, mgr.not_(y))
        swapped = mgr.rename(f, {0: 1, 1: 0})
        assert swapped == mgr.and_(y, mgr.not_(x))
