"""Tests for the stuck-at-fault ATPG subpackage.

Every engine is cross-checked: fault simulation against explicit
injection + evaluation, PODEM against SAT-based generation, redundancy
removal against BDD equivalence oracles, and the merge-as-ATPG bridge
against the sweeping engines' equivalence checker.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.graph import Aig, edge_not
from repro.aig.ops import and_all, ite, or_, xor
from repro.aig.simulate import eval_edge, random_input_vectors
from repro.atpg.equivalence import check_equal_via_atpg
from repro.atpg.faults import (
    OUTPUT,
    Fault,
    collapse_faults,
    collapse_ratio,
    full_fault_list,
)
from repro.atpg.fsim import FaultSimulator, fault_coverage
from repro.atpg.inject import fault_free_value, inject_fault
from repro.atpg.podem import PodemGenerator, PodemVerdict
from repro.atpg.redundancy import find_redundant_faults, remove_redundancies
from repro.atpg.satgen import SatTestGenerator, generate_test_sat
from repro.errors import AigError
from repro.sweep.satsweep import prove_edges_equivalent
from tests.conftest import build_random_aig, edges_equivalent


def single_and():
    aig = Aig()
    a, b = aig.add_inputs(2)
    return aig, a, b, aig.and_(a, b)


def redundant_circuit():
    """f = (a AND b) OR (a AND b AND c): the c-branch is redundant."""
    aig = Aig()
    a, b, c = aig.add_inputs(3)
    ab = aig.and_(a, b)
    abc = aig.and_(ab, c)
    return aig, (a, b, c), or_(aig, ab, abc)


class TestFaultModel:
    def test_full_list_size(self):
        aig, a, b, f = single_and()
        faults = full_fault_list(aig, [f])
        # 3 nodes * 2 output faults + 1 AND * 4 pin faults.
        assert len(faults) == 10

    def test_collapse_single_and(self):
        aig, a, b, f = single_and()
        collapsed = collapse_faults(aig, full_fault_list(aig, [f]))
        assert len(collapsed) == 7
        # Representative output s-a-0 kept, pin s-a-0 gone.
        assert Fault(f >> 1, OUTPUT, False) in collapsed
        assert Fault(f >> 1, 0, False) not in collapsed
        # Output s-a-1 dominated by the pin s-a-1 faults.
        assert Fault(f >> 1, OUTPUT, True) not in collapsed
        assert Fault(f >> 1, 0, True) in collapsed

    def test_collapse_ratio_reported(self):
        aig, _, root = build_random_aig(num_inputs=4, num_gates=20, seed=1)
        full, collapsed = collapse_ratio(aig, [root])
        assert 0 < collapsed < full

    def test_invalid_pin_rejected(self):
        aig, a, b, f = single_and()
        with pytest.raises(AigError):
            collapse_faults(aig, [Fault(f >> 1, 2, True)])

    def test_pin_fault_on_input_rejected(self):
        aig, a, b, f = single_and()
        with pytest.raises(AigError):
            collapse_faults(aig, [Fault(a >> 1, 0, True)])

    def test_describe_uses_input_names(self):
        aig = Aig()
        x = aig.add_input("clk")
        fault = Fault(x >> 1, OUTPUT, True)
        assert fault.describe(aig) == "clk/out s-a-1"


class TestInjection:
    def test_output_fault_forces_constant(self):
        aig, a, b, f = single_and()
        (faulty,) = inject_fault(aig, [f], Fault(f >> 1, OUTPUT, True))
        assert faulty == 1  # constant TRUE

    def test_pin_fault_simplifies_gate(self):
        aig, a, b, f = single_and()
        (faulty,) = inject_fault(aig, [f], Fault(f >> 1, 0, True))
        assert faulty == b  # a-pin tied to 1 leaves just b

    def test_input_output_fault(self):
        aig, a, b, f = single_and()
        (faulty,) = inject_fault(aig, [f], Fault(a >> 1, OUTPUT, False))
        assert faulty == 0  # a tied to 0 kills the AND

    def test_injection_preserves_unrelated_roots(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        f = aig.and_(a, b)
        g = aig.and_(b, c)
        faulty = inject_fault(aig, [f, g], Fault(f >> 1, OUTPUT, True))
        assert faulty[1] == g  # g's cone untouched

    def test_fault_free_value_of_pin(self):
        aig, a, b, f = single_and()
        assert fault_free_value(aig, Fault(f >> 1, 0, True)) == a
        assert fault_free_value(aig, Fault(f >> 1, OUTPUT, True)) == f

    @pytest.mark.parametrize("seed", range(10))
    def test_injected_function_differs_or_equals_semantically(self, seed):
        rng = random.Random(seed)
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=15, seed=seed
        )
        faults = collapse_faults(aig, full_fault_list(aig, [root]))
        fault = rng.choice(faults)
        (faulty,) = inject_fault(aig, [root], fault)
        # The faulty circuit must equal the original with the site pinned.
        input_nodes = [e >> 1 for e in inputs]
        for bits in range(16):
            assignment = {
                n: bool((bits >> k) & 1)
                for k, n in enumerate(input_nodes)
            }
            got = eval_edge(aig, faulty, assignment)
            want = _faulty_eval(aig, root, fault, assignment)
            assert got == want


def _faulty_eval(aig, root, fault, assignment):
    """Reference faulty evaluation: recompute with the site overridden."""
    values = {0: False}
    for node in aig.cone([root]):
        if aig.is_input(node):
            value = assignment.get(node, False)
        else:
            f0, f1 = aig.fanins(node)
            v0 = values[f0 >> 1] ^ bool(f0 & 1)
            v1 = values[f1 >> 1] ^ bool(f1 & 1)
            if fault.node == node and fault.pin == 0:
                v0 = fault.stuck_at
            if fault.node == node and fault.pin == 1:
                v1 = fault.stuck_at
            value = v0 and v1
        if fault.node == node and fault.pin == OUTPUT:
            value = fault.stuck_at
        values[node] = value
    return values[root >> 1] ^ bool(root & 1)


class TestFaultSimulation:
    def test_all_and_faults_detectable(self):
        aig, a, b, f = single_and()
        coverage, sim = fault_coverage(aig, [f], words=4, rounds=2)
        assert coverage == 1.0
        assert not sim.remaining

    def test_detected_patterns_actually_detect(self):
        aig, inputs, root = build_random_aig(
            num_inputs=5, num_gates=25, seed=3
        )
        sim = FaultSimulator(aig, [root])
        vectors = random_input_vectors(aig, words=4, seed=9)
        detected = sim.simulate_patterns(vectors)
        for fault in detected:
            pattern = sim.detected[fault]
            good = eval_edge(aig, root, pattern)
            bad = _faulty_eval(aig, root, fault, pattern)
            assert good != bad

    def test_redundant_fault_never_detected(self):
        aig, (a, b, c), root = redundant_circuit()
        sim = FaultSimulator(aig, [root], collapse=False)
        sim.run_random(words=8, rounds=4)
        # c's branch is unobservable: faults there must survive.
        surviving_nodes = {fault.node for fault in sim.remaining}
        assert c >> 1 in surviving_nodes

    def test_coverage_monotone_in_rounds(self):
        aig, _, root = build_random_aig(num_inputs=6, num_gates=40, seed=7)
        one, _ = fault_coverage(aig, [root], words=1, rounds=1)
        many, _ = fault_coverage(aig, [root], words=4, rounds=4)
        assert many >= one

    def test_empty_fault_list_full_coverage(self):
        aig, a, b, f = single_and()
        sim = FaultSimulator(aig, [f], faults=[])
        assert sim.coverage == 1.0


class TestPodem:
    def test_finds_test_for_and_output_fault(self):
        aig, a, b, f = single_and()
        generator = PodemGenerator(aig, [f])
        result = generator.generate(Fault(f >> 1, OUTPUT, False))
        assert result.found
        assert result.pattern == {a >> 1: True, b >> 1: True}

    def test_finds_test_for_pin_fault(self):
        aig, a, b, f = single_and()
        generator = PodemGenerator(aig, [f])
        result = generator.generate(Fault(f >> 1, 0, True))
        assert result.found
        # Activation: a = 0; propagation: b = 1.
        assert result.pattern == {a >> 1: False, b >> 1: True}

    def test_proves_redundancy(self):
        aig, (a, b, c), root = redundant_circuit()
        generator = PodemGenerator(aig, [root])
        # The AND gate combining (a AND b) with c feeds an OR whose other
        # branch is (a AND b) itself, so its output s-a-0 is untestable.
        abc_node = None
        for node in aig.cone([root]):
            if not aig.is_and(node):
                continue
            f0, f1 = aig.fanins(node)
            if (c >> 1) in (f0 >> 1, f1 >> 1):
                abc_node = node
        assert abc_node is not None
        result = generator.generate(Fault(abc_node, OUTPUT, False))
        assert result.verdict is PodemVerdict.REDUNDANT

    def test_fault_outside_cone_is_redundant(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, a)  # only a in the cone (f == a)
        dangling = aig.and_(b, b)
        generator = PodemGenerator(aig, [f])
        result = generator.generate(Fault(b >> 1, OUTPUT, True))
        assert result.verdict is PodemVerdict.REDUNDANT

    @pytest.mark.parametrize("seed", range(10))
    def test_podem_patterns_verified_by_simulation(self, seed):
        aig, _, root = build_random_aig(
            num_inputs=5, num_gates=20, seed=100 + seed
        )
        faults = collapse_faults(aig, full_fault_list(aig, [root]))
        generator = PodemGenerator(aig, [root])
        for fault in faults[:12]:
            result = generator.generate(fault)
            if result.found:
                good = eval_edge(aig, root, result.pattern)
                bad = _faulty_eval(aig, root, fault, result.pattern)
                assert good != bad


class TestSatAtpg:
    def test_sat_matches_podem_verdicts(self):
        aig, (a, b, c), root = redundant_circuit()
        faults = collapse_faults(aig, full_fault_list(aig, [root]))
        podem = PodemGenerator(aig, [root])
        sat = SatTestGenerator(aig, [root])
        for fault in faults:
            podem_result = podem.generate(fault)
            testable, pattern = sat.generate(fault)
            assert (podem_result.verdict is PodemVerdict.TEST_FOUND) == bool(
                testable
            )
            if testable:
                good = eval_edge(aig, root, pattern)
                bad = _faulty_eval(aig, root, fault, pattern)
                assert good != bad

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_sat_and_podem_agree(self, seed):
        rng = random.Random(seed)
        aig, _, root = build_random_aig(
            num_inputs=4, num_gates=12, seed=seed
        )
        faults = collapse_faults(aig, full_fault_list(aig, [root]))
        if not faults:  # root collapsed to a constant
            return
        fault = rng.choice(faults)
        podem = PodemGenerator(aig, [root]).generate(fault)
        testable, _ = generate_test_sat(aig, [root], fault)
        assert (podem.verdict is PodemVerdict.TEST_FOUND) == bool(testable)

    def test_structurally_irrelevant_fault(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = a  # root does not depend on b at all
        testable, _ = generate_test_sat(aig, [f], Fault(b >> 1, OUTPUT, True))
        assert testable is False


class TestRedundancyRemoval:
    def test_redundant_branch_removed(self):
        aig, (a, b, c), root = redundant_circuit()
        (new_root,), stats = remove_redundancies(aig, [root])
        assert stats.get("ties_applied") >= 1
        assert stats.get("size_after") <= stats.get("size_before")
        assert edges_equivalent(
            aig, root, new_root, [a >> 1, b >> 1, c >> 1]
        )
        # c must have left the support entirely.
        from repro.aig.ops import support

        assert (c >> 1) not in support(aig, new_root)

    def test_irredundant_circuit_untouched(self):
        aig, a, b, f = single_and()
        (new_root,), stats = remove_redundancies(aig, [f])
        assert new_root == f
        assert stats.get("ties_applied", 0) == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_removal_preserves_function(self, seed):
        aig, inputs, root = build_random_aig(
            num_inputs=4, num_gates=18, seed=200 + seed
        )
        (new_root,), _ = remove_redundancies(aig, [root])
        assert edges_equivalent(
            aig, root, new_root, [e >> 1 for e in inputs]
        )

    def test_find_redundant_subset_of_collapsed(self):
        aig, (a, b, c), root = redundant_circuit()
        redundant = find_redundant_faults(aig, [root])
        collapsed = set(
            collapse_faults(aig, full_fault_list(aig, [root]))
        )
        assert redundant
        assert set(redundant) <= collapsed


class TestEquivalenceBridge:
    def test_equal_edges_proved_by_fault_redundancy(self):
        aig = Aig()
        a, b, c = aig.add_inputs(3)
        lhs = aig.and_(a, aig.and_(b, c))
        rhs = aig.and_(aig.and_(a, b), c)
        for engine in ("sat", "podem"):
            verdict, cex = check_equal_via_atpg(aig, lhs, rhs, engine=engine)
            assert verdict is True
            assert cex is None

    def test_unequal_edges_yield_distinguishing_test(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        g = or_(aig, a, b)
        for engine in ("sat", "podem"):
            verdict, cex = check_equal_via_atpg(aig, f, g, engine=engine)
            assert verdict is False
            assert eval_edge(aig, f, cex) != eval_edge(aig, g, cex)

    def test_complement_pair(self):
        aig = Aig()
        a, b = aig.add_inputs(2)
        f = aig.and_(a, b)
        verdict, cex = check_equal_via_atpg(aig, f, edge_not(f))
        assert verdict is False
        assert cex is not None

    @pytest.mark.parametrize("seed", range(10))
    def test_bridge_agrees_with_sweeping_equivalence(self, seed):
        rng = random.Random(300 + seed)
        aig, _, root = build_random_aig(
            num_inputs=4, num_gates=15, seed=seed
        )
        cone = [2 * n for n in aig.cone([root]) if aig.is_and(n)]
        other = rng.choice(cone) ^ rng.randint(0, 1) if cone else root
        atpg_verdict, _ = check_equal_via_atpg(aig, root, other)
        sweep_verdict, _ = prove_edges_equivalent(aig, root, other)
        assert atpg_verdict == sweep_verdict
