"""Tests for product machines and sequential equivalence miters."""

import pytest

from repro.aig.graph import edge_not
from repro.circuits.netlist import Netlist
from repro.circuits.product import product_machine, sequential_miter
from repro.errors import NetlistError
from repro.mc.engine import verify
from repro.mc.result import Status


def toggler(name="toggler", twist=False):
    """A 1-bit toggler; with ``twist`` the state is stored inverted.

    Both variants output the same stream, so they are sequentially
    equivalent despite different state encodings.
    """
    netlist = Netlist(name)
    enable = netlist.add_input("enable")
    bit = netlist.add_latch("bit", init=twist)
    aig = netlist.aig
    from repro.aig.ops import xor

    netlist.set_next(bit, xor(aig, bit, enable))
    out = edge_not(bit) if twist else bit
    netlist.set_output("value", out)
    netlist.validate()
    return netlist


def counter_pair(width=3, broken=False):
    """Two encodings of a width-bit counter's LSB stream."""
    from repro.circuits.generators import mod_counter

    left = mod_counter(width, 1 << width)
    left.set_output("lsb", 2 * left.latch_nodes[0])
    right = toggler("tick_toggler", twist=True)
    # mod_counter has an "enable"-free interface; rebuild the toggler with
    # matching input count instead.
    right = Netlist("lsb_toggler")
    inputs = [right.add_input(f"in{k}") for k in range(left.num_inputs)]
    bit = right.add_latch("bit", init=True)  # inverted encoding
    right.set_next(bit, edge_not(bit) if not broken else bit)
    right.set_output("lsb", edge_not(bit))
    right.validate()
    return left, right


class TestProductMachine:
    def test_shared_inputs_and_disjoint_latches(self):
        left = toggler("a")
        right = toggler("b", twist=True)
        product, louts, routs = product_machine(left, right)
        assert product.num_inputs == 1
        assert product.num_latches == 2
        assert set(louts) == {"value"}
        assert set(routs) == {"value"}

    def test_input_count_mismatch_rejected(self):
        left = toggler()
        right = Netlist("two_inputs")
        right.add_input("x")
        right.add_input("y")
        with pytest.raises(NetlistError):
            product_machine(left, right)

    def test_product_simulation_matches_sides(self):
        left = toggler("a")
        right = toggler("b", twist=True)
        product, louts, routs = product_machine(left, right)
        stimulus = [{product.input_nodes[0]: bool(k % 2)} for k in range(6)]
        states = product.run_trace(stimulus)
        assert len(states) == 7


class TestSequentialMiter:
    def test_equivalent_encodings_proved(self):
        miter = sequential_miter(toggler("plain"), toggler("twisted", True))
        for method in ("reach_aig", "reach_bdd", "reach_aig_fwd"):
            result = verify(miter, method=method)
            assert result.status is Status.PROVED, method

    def test_inequivalent_designs_failed(self):
        left = toggler("plain")
        # A broken twin: never toggles.
        right = Netlist("stuck")
        right.add_input("enable")
        bit = right.add_latch("bit", init=False)
        right.set_next(bit, bit)
        right.set_output("value", bit)
        right.validate()
        miter = sequential_miter(left, right)
        result = verify(miter, method="reach_aig")
        assert result.status is Status.FAILED
        assert result.trace.validate(sequential_miter(left, right))

    def test_counter_lsb_equivalence(self):
        left, right = counter_pair(width=3)
        miter = sequential_miter(left, right, outputs=["lsb"])
        assert verify(miter, method="reach_bdd").status is Status.PROVED
        assert verify(miter, method="reach_aig").status is Status.PROVED

    def test_broken_counter_pair_fails(self):
        left, right = counter_pair(width=3, broken=True)
        miter = sequential_miter(left, right, outputs=["lsb"])
        result = verify(miter, method="reach_aig")
        assert result.status is Status.FAILED

    def test_no_common_outputs_rejected(self):
        left = toggler()
        right = Netlist("other")
        right.add_input("enable")
        bit = right.add_latch("b", init=False)
        right.set_next(bit, bit)
        right.set_output("different_name", bit)
        right.validate()
        with pytest.raises(NetlistError):
            sequential_miter(left, right)

    def test_explicit_missing_output_rejected(self):
        left = toggler()
        right = toggler("b", True)
        with pytest.raises(NetlistError):
            sequential_miter(left, right, outputs=["ghost"])

    def test_bmc_finds_shallow_differences(self):
        left, right = counter_pair(width=3, broken=True)
        miter = sequential_miter(left, right, outputs=["lsb"])
        result = verify(miter, method="bmc", max_depth=5)
        assert result.status is Status.FAILED
