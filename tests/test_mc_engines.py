"""Engine-level tests: BMC, k-induction, all-SAT pre-image, unrolling."""

import pytest

from repro.aig.graph import TRUE, edge_not
from repro.aig.ops import support
from repro.circuits import generators as G
from repro.core.partial import PartialQuantifier
from repro.core.quantify import QuantifyOptions
from repro.core.substitution import preimage_by_substitution
from repro.errors import ModelCheckingError, ResourceLimit
from repro.mc.bmc import bmc
from repro.mc.induction import k_induction
from repro.mc.preimage_sat import allsat_preimage, allsat_quantify
from repro.mc.result import Status
from repro.mc.unroll import Unroller
from repro.sat.solver import SolveResult
from tests.conftest import edges_equivalent


class TestUnroller:
    def test_frame_variables_distinct(self):
        net = G.mod_counter(3, 5)
        unroller = Unroller(net)
        f0 = unroller.frame(0)
        f1 = unroller.frame(1)
        assert set(f0[n] for n in net.latch_nodes).isdisjoint(
            f1[n] for n in net.latch_nodes
        )

    def test_transition_semantics(self):
        net = G.mod_counter(3, 5)
        unroller = Unroller(net)
        unroller.assert_initial_state()
        unroller.ensure_frames(4)
        assert unroller.solver.solve() is SolveResult.SAT
        # Frame k must hold counter value k (deterministic system).
        for k in range(4):
            state = unroller.read_state(k)
            value = sum(
                int(state[node]) << i
                for i, node in enumerate(net.latch_nodes)
            )
            assert value == k

    def test_property_literal(self):
        net = G.bug_at_depth(3)
        unroller = Unroller(net)
        unroller.assert_initial_state()
        for k in range(3):
            assert unroller.solver.solve(
                [-unroller.property_lit(k)]
            ) is SolveResult.UNSAT
        assert unroller.solver.solve(
            [-unroller.property_lit(3)]
        ) is SolveResult.SAT

    def test_state_distinct_clauses(self):
        net = G.mod_counter(2, 3)
        unroller = Unroller(net)
        unroller.assert_initial_state()
        # Frames 0..2 are distinct (0,1,2); frame 3 wraps to 0 == frame 0.
        unroller.state_distinct_clauses(0, 1)
        unroller.state_distinct_clauses(1, 2)
        assert unroller.solver.solve() is SolveResult.SAT
        unroller.state_distinct_clauses(0, 3)
        assert unroller.solver.solve() is SolveResult.UNSAT

    def test_foreign_edge_rejected(self):
        net = G.mod_counter(2, 3)
        unroller = Unroller(net)
        foreign = net.aig.add_input("foreign")
        with pytest.raises(ModelCheckingError):
            unroller.edge_lit_in(unroller.frame(0), foreign)


class TestBmc:
    def test_finds_exact_depth(self):
        for depth in (1, 4, 9):
            net = G.bug_at_depth(depth)
            result = bmc(net, max_depth=depth + 3)
            assert result.status is Status.FAILED
            assert result.trace.depth == depth
            assert result.trace.validate(net)

    def test_no_bug_within_bound(self):
        net = G.bug_at_depth(10)
        result = bmc(net, max_depth=5)
        assert result.status is Status.UNKNOWN

    def test_safe_design_unknown(self):
        net = G.mod_counter(3, 6)
        result = bmc(net, max_depth=15)
        assert result.status is Status.UNKNOWN

    @pytest.mark.parametrize("folds", [1, 2, 3])
    def test_fold_equivalence(self, folds):
        net = G.bug_at_depth(5)
        result = bmc(net, max_depth=8, preimage_folds=folds)
        assert result.status is Status.FAILED
        assert result.trace.depth == 5
        assert result.trace.validate(net)

    def test_fold_shortens_unrolling(self):
        # Each fold replaces one unrolled time frame (the point of the
        # Section 4 preprocessing: fewer frames, fewer input variables in
        # the SAT problem).
        plain = bmc(G.bug_at_depth(5), max_depth=8)
        folded = bmc(G.bug_at_depth(5), max_depth=8, preimage_folds=2)
        assert (
            folded.stats.get("frames_unrolled")
            == plain.stats.get("frames_unrolled") - 2
        )

    def test_fold_deeper_than_bug(self):
        result = bmc(G.bug_at_depth(2), max_depth=6, preimage_folds=5)
        assert result.status is Status.FAILED
        assert result.trace.depth == 2

    def test_input_dependent_violation(self):
        result = bmc(G.arbiter(3, safe=False), max_depth=3)
        assert result.status is Status.FAILED
        assert result.trace.validate(G.arbiter(3, safe=False))


class TestKInduction:
    def test_proves_inductive_invariant(self):
        result = k_induction(G.shift_register(5), max_k=5)
        assert result.status is Status.PROVED

    def test_proves_counter_invariant(self):
        result = k_induction(G.mod_counter(4, 10), max_k=6)
        assert result.status is Status.PROVED

    def test_finds_bugs(self):
        result = k_induction(G.bug_at_depth(4), max_k=8)
        assert result.status is Status.FAILED
        assert result.trace.depth == 4

    @staticmethod
    def _non_inductive_safe_netlist():
        # mod_counter(4, 10) with the *weaker* property "value < 11": safe
        # (reachable values are 0..9) but not 1-inductive, because the
        # unreachable P-state 10 steps to the NOT-P state 11.  It becomes
        # provable at k=2 since 10 has no predecessor.
        from repro.circuits.generators import _less_than_constant

        net = G.mod_counter(4, 10)
        bits = [2 * node for node in net.latch_nodes]
        net.set_property(_less_than_constant(net, bits, 11))
        net.validate()
        return net

    def test_unknown_when_k_too_small(self):
        # At k=0 the step case "P(s0) and NOT P(s1)" is satisfiable via
        # the unreachable predecessor 10 -> 11.
        result = k_induction(
            self._non_inductive_safe_netlist(), max_k=0, unique_states=False
        )
        assert result.status is Status.UNKNOWN

    def test_proved_once_k_reaches_induction_depth(self):
        # At k=1 the path needs a P-predecessor of 10, which does not
        # exist, so the property becomes provable.
        result = k_induction(
            self._non_inductive_safe_netlist(), max_k=4, unique_states=False
        )
        assert result.status is Status.PROVED
        assert result.stats.get("proved_at_k") == 1

    def test_unique_states_gives_completeness(self):
        result = k_induction(G.lfsr(4), max_k=20, unique_states=True)
        assert result.status is Status.PROVED

    def test_fold_preserves_verdicts(self):
        safe = k_induction(G.mod_counter(3, 6), max_k=8, preimage_folds=1)
        assert safe.status is Status.PROVED
        buggy = k_induction(G.bug_at_depth(3), max_k=8, preimage_folds=2)
        assert buggy.status is Status.FAILED
        assert buggy.trace.depth == 3


class TestAllSatPreimage:
    def test_matches_circuit_preimage(self):
        net = G.fifo_level(3, safe=True)
        bad = edge_not(net.property_edge)
        sat_result, stats = allsat_preimage(net, bad)
        # Reference: circuit-based quantification of the same composition.
        from repro.core.quantify import quantify_exists

        composed = preimage_by_substitution(
            net.aig, bad, net.next_functions()
        )
        reference = quantify_exists(
            net.aig, composed, net.input_nodes
        )
        nodes = net.latch_nodes + net.input_nodes
        assert edges_equivalent(net.aig, sat_result, reference.edge, nodes)

    def test_cube_count_reported(self):
        net = G.fifo_level(3, safe=True)
        bad = edge_not(net.property_edge)
        _, stats = allsat_preimage(net, bad)
        assert stats.get("cubes") >= 1

    def test_no_inputs_noop(self):
        net = G.mod_counter(3, 6)   # no primary inputs
        bad = edge_not(net.property_edge)
        result, stats = allsat_preimage(net, bad)
        assert stats.get("cubes") == 0

    def test_max_cubes_limit(self):
        net = G.arbiter(4, safe=False)
        bad = edge_not(net.property_edge)
        with pytest.raises(ResourceLimit):
            allsat_preimage(net, bad, max_cubes=0)

    def test_foreign_variable_rejected(self):
        net = G.fifo_level(2)
        bad = edge_not(net.property_edge)
        with pytest.raises(ModelCheckingError):
            allsat_preimage(net, bad, inputs_to_quantify=[99])

    def test_partial_then_allsat_combination(self):
        """Section 4: partial quantification shrinks the all-SAT job."""
        net = G.fifo_level(3, safe=True)
        aig = net.aig
        bad = edge_not(net.property_edge)
        composed = preimage_by_substitution(aig, bad, net.next_functions())
        inputs = [
            n for n in net.input_nodes if n in support(aig, composed)
        ]
        # Pure all-SAT over every input:
        pure, pure_stats = allsat_quantify(aig, composed, inputs)
        # Partial circuit quantification first:
        quantifier = PartialQuantifier(aig, growth_factor=3.0)
        outcome = quantifier.quantify(composed, inputs)
        combined, combo_stats = allsat_quantify(
            aig, outcome.edge, outcome.aborted
        )
        assert combo_stats.get("decision_vars") <= pure_stats.get(
            "decision_vars"
        )
        nodes = net.latch_nodes + net.input_nodes
        assert edges_equivalent(aig, pure, combined, nodes)
