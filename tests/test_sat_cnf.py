"""Unit tests for the CNF container and DIMACS I/O."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.errors import SatError
from repro.sat import CNF


class TestConstruction:
    def test_empty(self):
        f = CNF()
        assert f.num_vars == 0
        assert f.num_clauses == 0
        assert len(f) == 0

    def test_new_var_sequential(self):
        f = CNF()
        assert f.new_var() == 1
        assert f.new_var() == 2
        assert f.num_vars == 2

    def test_new_vars_bulk(self):
        f = CNF()
        assert f.new_vars(3) == [1, 2, 3]

    def test_new_vars_negative_rejected(self):
        with pytest.raises(SatError):
            CNF().new_vars(-1)

    def test_negative_num_vars_rejected(self):
        with pytest.raises(SatError):
            CNF(-1)

    def test_add_clause_grows_vars(self):
        f = CNF()
        f.add_clause([3, -5])
        assert f.num_vars == 5

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            CNF().add_clause([1, 0])

    def test_extend(self):
        f = CNF()
        f.extend([[1, 2], [-1]])
        assert f.num_clauses == 2

    def test_copy_is_independent(self):
        f = CNF()
        f.add_clause([1])
        g = f.copy()
        g.add_clause([2])
        assert f.num_clauses == 1
        assert g.num_clauses == 2

    def test_iteration_yields_tuples(self):
        f = CNF()
        f.add_clause([1, -2])
        assert list(f) == [(1, -2)]


class TestEvaluate:
    def test_satisfied(self):
        f = CNF(2)
        f.add_clause([1, 2])
        assert f.evaluate([True, False])

    def test_falsified(self):
        f = CNF(2)
        f.add_clause([1, 2])
        assert not f.evaluate([False, False])

    def test_empty_formula_is_true(self):
        assert CNF(1).evaluate([False])

    def test_short_assignment_rejected(self):
        f = CNF(3)
        f.add_clause([3])
        with pytest.raises(SatError):
            f.evaluate([True])

    def test_negative_literal_semantics(self):
        f = CNF(1)
        f.add_clause([-1])
        assert f.evaluate([False])
        assert not f.evaluate([True])


class TestDimacs:
    def test_roundtrip(self):
        f = CNF()
        f.add_clause([1, -2, 3])
        f.add_clause([-3])
        text = f.to_dimacs_string()
        g = CNF.from_dimacs(text)
        assert g.num_vars == f.num_vars
        assert list(g) == list(f)

    def test_header_line(self):
        f = CNF(4)
        f.add_clause([1])
        assert f.to_dimacs_string().splitlines()[0] == "p cnf 4 1"

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        f = CNF.from_dimacs(text)
        assert f.num_vars == 2
        assert list(f) == [(1, -2)]

    def test_parse_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        f = CNF.from_dimacs(text)
        assert list(f) == [(1, 2, 3)]

    def test_parse_declared_vars_override(self):
        f = CNF.from_dimacs("p cnf 10 1\n1 0\n")
        assert f.num_vars == 10

    def test_parse_missing_terminator_rejected(self):
        with pytest.raises(SatError):
            CNF.from_dimacs("p cnf 1 1\n1\n")

    def test_parse_malformed_header_rejected(self):
        with pytest.raises(SatError):
            CNF.from_dimacs("p dnf 1 1\n1 0\n")

    def test_parse_file_object(self):
        f = CNF.from_dimacs(io.StringIO("p cnf 1 1\n-1 0\n"))
        assert list(f) == [(-1,)]


@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        max_size=12,
    )
)
def test_dimacs_roundtrip_property(clauses):
    f = CNF()
    for clause in clauses:
        f.add_clause(clause)
    g = CNF.from_dimacs(f.to_dimacs_string())
    assert list(g) == list(f)
    assert g.num_vars == f.num_vars
