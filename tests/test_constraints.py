"""Tests for environment constraints (assume-invariants).

The canonical scenario: the *buggy* arbiter (grants = requests, no token)
violates mutual exclusion only when two requests arrive together.  Under
the constraint "at most one request per cycle" every engine must prove
it safe; without the constraint every engine must find the collision.
"""

import pytest

from repro.aig.graph import TRUE, edge_not
from repro.aig.ops import and_all
from repro.circuits.generators import arbiter
from repro.circuits.netlist import Netlist
from repro.circuits.parse import parse_netlist, serialize_netlist
from repro.errors import NetlistError
from repro.mc.engine import verify
from repro.mc.result import Status


def at_most_one_request(netlist: Netlist) -> int:
    aig = netlist.aig
    requests = [2 * node for node in netlist.input_nodes]
    return and_all(
        aig,
        [
            edge_not(aig.and_(requests[i], requests[j]))
            for i in range(len(requests))
            for j in range(i + 1, len(requests))
        ],
    )


def constrained_buggy_arbiter(clients: int = 3) -> Netlist:
    netlist = arbiter(clients, safe=False)
    netlist.add_constraint(at_most_one_request(netlist))
    return netlist


ENGINES = [
    "reach_aig", "reach_aig_fwd", "reach_bdd", "reach_bdd_fwd",
    "k_induction",
]


class TestNetlistApi:
    def test_default_unconstrained(self):
        netlist = arbiter(3)
        assert netlist.constraints == []
        assert netlist.constraint_edge() == TRUE

    def test_constraint_edge_conjunction(self):
        netlist = arbiter(3)
        first = 2 * netlist.input_nodes[0]
        second = 2 * netlist.input_nodes[1]
        netlist.add_constraint(first)
        netlist.add_constraint(second)
        assert len(netlist.constraints) == 2
        assert netlist.constraint_edge() == netlist.aig.and_(first, second)

    def test_constraints_hold_evaluation(self):
        netlist = constrained_buggy_arbiter(3)
        state = netlist.init_assignment()
        one_request = {n: False for n in netlist.input_nodes}
        one_request[netlist.input_nodes[0]] = True
        assert netlist.constraints_hold(state, one_request)
        two_requests = dict(one_request)
        two_requests[netlist.input_nodes[1]] = True
        assert not netlist.constraints_hold(state, two_requests)

    def test_validate_rejects_foreign_constraint(self):
        netlist = arbiter(3)
        # An AIG-level input the netlist does not know about is foreign.
        foreign = netlist.aig.add_input("foreign")
        netlist.add_constraint(foreign)
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_clone_preserves_constraints(self):
        netlist = constrained_buggy_arbiter(3)
        clone, _, _ = netlist.clone()
        assert len(clone.constraints) == 1
        state = clone.init_assignment()
        two = {n: False for n in clone.input_nodes}
        two[clone.input_nodes[0]] = True
        two[clone.input_nodes[1]] = True
        assert not clone.constraints_hold(state, two)

    def test_native_format_roundtrip(self):
        netlist = constrained_buggy_arbiter(3)
        recovered = parse_netlist(serialize_netlist(netlist))
        assert len(recovered.constraints) == 1
        result = verify(recovered, method="reach_bdd")
        assert result.status is Status.PROVED


class TestEngineSemantics:
    def test_unconstrained_buggy_arbiter_fails_everywhere(self):
        for engine in ENGINES:
            result = verify(arbiter(3, safe=False), method=engine)
            assert result.status is Status.FAILED, engine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_constraint_makes_buggy_arbiter_safe(self, engine):
        result = verify(constrained_buggy_arbiter(3), method=engine)
        assert result.status is Status.PROVED, engine

    def test_bmc_finds_nothing_under_constraint(self):
        result = verify(
            constrained_buggy_arbiter(3), method="bmc", max_depth=8
        )
        assert result.status is Status.UNKNOWN

    def test_bmc_still_finds_violation_without_constraint(self):
        result = verify(arbiter(3, safe=False), method="bmc", max_depth=8)
        assert result.status is Status.FAILED

    def test_partially_constrained_still_fails_with_legal_trace(self):
        # Constrain only requests 0 and 1 to be exclusive; 0 and 2 can
        # still collide, so the property remains violated — but the trace
        # must respect the constraint.
        netlist = arbiter(3, safe=False)
        aig = netlist.aig
        r0, r1 = (2 * n for n in netlist.input_nodes[:2])
        netlist.add_constraint(edge_not(aig.and_(r0, r1)))
        for engine in ("reach_aig", "reach_aig_fwd", "reach_bdd"):
            result = verify(
                arbiter_with_partial_constraint(), method=engine
            )
            assert result.status is Status.FAILED, engine
            assert result.trace.validate(arbiter_with_partial_constraint())

    def test_constraint_on_state_restricts_violations(self):
        # A counter that "fails" above 5, constrained to stay below 4 by
        # a state constraint: the violation becomes unreachable.
        netlist = Netlist("limited")
        from repro.aig.ops import xor

        bits = [netlist.add_latch(f"b{k}") for k in range(3)]
        aig = netlist.aig
        carry = TRUE
        for bit in bits:
            netlist.set_next(bit, xor(aig, bit, carry))
            carry = aig.and_(bit, carry)
        value_ge_6 = aig.and_(bits[1], bits[2])      # >= 6
        netlist.set_property(edge_not(value_ge_6))
        netlist.add_constraint(edge_not(bits[2]))     # stay below 4
        netlist.validate()
        for engine in ("reach_aig", "reach_bdd"):
            assert verify(netlist, method=engine).status is Status.PROVED

    def test_folded_bmc_respects_constraints(self):
        result = verify(
            constrained_buggy_arbiter(3),
            method="bmc",
            max_depth=6,
            preimage_folds=2,
        )
        assert result.status is Status.UNKNOWN


def arbiter_with_partial_constraint() -> Netlist:
    netlist = arbiter(3, safe=False)
    aig = netlist.aig
    r0, r1 = (2 * n for n in netlist.input_nodes[:2])
    netlist.add_constraint(edge_not(aig.and_(r0, r1)))
    return netlist


class TestTraceValidation:
    def test_validate_rejects_constraint_violating_trace(self):
        netlist = constrained_buggy_arbiter(3)
        # Hand-build the collision trace that the constraint forbids.
        unconstrained = verify(arbiter(3, safe=False), method="reach_aig")
        assert unconstrained.status is Status.FAILED
        assert not unconstrained.trace.validate(netlist)

    def test_partial_constraint_trace_uses_legal_inputs(self):
        result = verify(arbiter_with_partial_constraint(), method="reach_aig")
        assert result.status is Status.FAILED
        netlist = arbiter_with_partial_constraint()
        nodes = netlist.input_nodes
        violation = result.trace.violation_inputs
        assert violation is not None
        assert not (violation[nodes[0]] and violation[nodes[1]])
