"""Shared test helpers: random circuit builders and BDD-based oracles."""

from __future__ import annotations

import random

import pytest

from repro.aig.graph import Aig
from repro.bdd.from_aig import aig_to_bdd
from repro.bdd.manager import BddManager


def build_random_aig(
    num_inputs: int, num_gates: int, seed: int
) -> tuple[Aig, list[int], int]:
    """A random AIG with one root edge; reproducible by seed."""
    rng = random.Random(seed)
    aig = Aig()
    inputs = aig.add_inputs(num_inputs)
    nodes = list(inputs)
    for _ in range(num_gates):
        a = rng.choice(nodes) ^ rng.randint(0, 1)
        b = rng.choice(nodes) ^ rng.randint(0, 1)
        nodes.append(aig.and_(a, b))
    root = nodes[-1] ^ rng.randint(0, 1)
    return aig, inputs, root


def bdd_of_edge(aig: Aig, edge: int, input_nodes: list[int]):
    """Canonical form of an AIG edge (for equivalence assertions)."""
    manager = BddManager()
    var_map = {}
    for index, node in enumerate(input_nodes):
        manager.new_var()
        var_map[node] = index
    return manager, aig_to_bdd(aig, edge, manager, var_map)


def edges_equivalent(aig: Aig, a: int, b: int, input_nodes: list[int]) -> bool:
    """Semantic equality of two edges via canonical BDDs."""
    manager = BddManager()
    var_map = {}
    for index, node in enumerate(input_nodes):
        manager.new_var()
        var_map[node] = index
    cache: dict[int, int] = {}
    return aig_to_bdd(aig, a, manager, var_map, cache) == aig_to_bdd(
        aig, b, manager, var_map, cache
    )


@pytest.fixture
def small_aig():
    """A tiny fixed AIG: inputs a, b, c and f = (a AND b) OR (NOT a AND c)."""
    from repro.aig.ops import ite

    aig = Aig()
    a, b, c = aig.add_inputs(3)
    f = ite(aig, a, b, c)
    return aig, (a, b, c), f
