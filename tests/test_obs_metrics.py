"""Tests for the labeled metrics registry (:mod:`repro.obs.metrics`).

Covers the three metric kinds and their label children, both exposition
formats (and their agreement — they must render the same ``collect()``
snapshot), scrape-time collectors, quantile estimators, the
``ENABLED``-flag zero-cost discipline, and the report-level p50/p95
series summaries layered on top.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_family,
    histogram_quantile,
    quantiles,
)

# A Prometheus text-format sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)


def _parse_prometheus(text: str) -> tuple[dict, dict]:
    """Parse exposition text into {type-by-name}, {(name, labels): value}."""
    types: dict[str, str] = {}
    samples: dict[tuple[str, str], float] = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split()
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable sample line: {line!r}"
        value = match.group("value")
        parsed = math.inf if value == "+Inf" else float(value)
        samples[(match.group("name"), match.group("labels") or "")] = parsed
    return types, samples


class TestFamilies:
    def test_counter_labels_and_monotonicity(self):
        registry = MetricsRegistry()
        claims = registry.counter("claims_total", "claims", ("method",))
        claims.labels("pdr").inc()
        claims.labels("pdr").inc(2)
        claims.labels("bmc").inc()
        snap = claims.snapshot()
        values = {
            sample["labels"]["method"]: sample["value"]
            for sample in snap["samples"]
        }
        assert values == {"pdr": 3.0, "bmc": 1.0}
        with pytest.raises(ValueError, match="only go up"):
            claims.labels("pdr").inc(-1)

    def test_labelless_family_exposes_zero(self):
        registry = MetricsRegistry()
        requeues = registry.counter("requeues_total", "requeues")
        snap = requeues.snapshot()
        assert snap["samples"] == [{"labels": {}, "value": 0.0}]

    def test_gauge_set_inc_dec_and_callback(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth", "queue depth")
        depth.set(5)
        depth.inc()
        depth.dec(2)
        assert depth.snapshot()["samples"][0]["value"] == 4.0
        live = registry.gauge("live", "evaluated at collect")
        live.set_function(lambda: 17)
        assert live.snapshot()["samples"][0]["value"] == 17.0

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        sample = hist.snapshot()["samples"][0]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(56.05)
        assert sample["buckets"] == [
            [0.1, 1], [1.0, 3], [10.0, 4], [math.inf, 5],
        ]

    def test_histogram_boundary_lands_in_le_bucket(self):
        # le is inclusive: an observation exactly on a bound counts there.
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.snapshot()["samples"][0]["buckets"][0] == [1.0, 1]

    def test_bad_names_and_buckets_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad-name", "")
        with pytest.raises(ValueError, match="invalid label name"):
            Gauge("ok", "", ("bad-label",))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "", buckets=(1.0, 1.0))

    def test_label_arity_enforced(self):
        counter = Counter("c_total", "", ("a", "b"))
        with pytest.raises(ValueError, match="expects labels"):
            counter.labels("only-one")

    def test_registry_rejects_type_or_label_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("m",))
        assert registry.counter("x_total", "", ("m",)) is not None  # idempotent
        with pytest.raises(ValueError, match="different type"):
            registry.gauge("x_total", "", ("m",))
        with pytest.raises(ValueError, match="different type"):
            registry.counter("x_total", "", ("other",))


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        claims = registry.counter("repro_claims_total", "claims", ("method",))
        claims.labels("pdr").inc(3)
        claims.labels("bmc").inc()
        depth = registry.gauge("repro_depth", "queue depth")
        depth.set(7)
        lat = registry.histogram(
            "repro_lat_seconds", "latency", ("method",), buckets=(0.1, 1.0)
        )
        lat.labels("pdr").observe(0.05)
        lat.labels("pdr").observe(0.5)
        return registry

    def test_prometheus_text_parses_and_has_type_headers(self):
        types, samples = _parse_prometheus(self._populated().to_prometheus())
        assert types["repro_claims_total"] == "counter"
        assert types["repro_depth"] == "gauge"
        assert types["repro_lat_seconds"] == "histogram"
        assert samples[("repro_claims_total", 'method="pdr"')] == 3
        assert samples[("repro_depth", "")] == 7
        assert samples[("repro_lat_seconds_bucket",
                        'method="pdr",le="0.1"')] == 1
        assert samples[("repro_lat_seconds_bucket",
                        'method="pdr",le="+Inf"')] == 2
        assert samples[("repro_lat_seconds_count", 'method="pdr"')] == 2
        assert samples[("repro_lat_seconds_sum",
                        'method="pdr"')] == pytest.approx(0.55)

    def test_json_and_prometheus_agree(self):
        registry = self._populated()
        doc = registry.to_json()
        _, samples = _parse_prometheus(registry.to_prometheus())
        for family in doc.values():
            for sample in family["samples"]:
                labels = ",".join(
                    f'{key}="{value}"'
                    for key, value in sample["labels"].items()
                )
                if family["type"] == "histogram":
                    assert samples[
                        (family["name"] + "_count", labels)
                    ] == sample["count"]
                    for le, cum in sample["buckets"]:
                        le_str = "+Inf" if le == math.inf else (
                            str(int(le)) if float(le).is_integer()
                            else repr(le)
                        )
                        key = (labels + "," if labels else "") + \
                            f'le="{le_str}"'
                        assert samples[
                            (family["name"] + "_bucket", key)
                        ] == cum
                else:
                    assert samples[
                        (family["name"], labels)
                    ] == sample["value"]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "", ("path",))
        counter.labels('we"ird\\name\n').inc()
        text = registry.to_prometheus()
        assert 'path="we\\"ird\\\\name\\n"' in text


class TestCollectors:
    def test_collector_families_appear_in_both_formats(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [{
                "name": "derived_depth",
                "type": "gauge",
                "help": "from the store",
                "samples": [{"labels": {}, "value": 42}],
            }]
        )
        assert registry.to_json()["derived_depth"]["samples"][0]["value"] == 42
        assert "derived_depth 42" in registry.to_prometheus()

    def test_collector_collision_with_registered_family_raises(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "")
        registry.register_collector(
            lambda: [{"name": "dup_total", "type": "counter", "help": "",
                      "samples": []}]
        )
        with pytest.raises(ValueError, match="collides"):
            registry.collect()

    def test_histogram_family_builds_snapshot_from_values(self):
        family = histogram_family(
            "f_seconds", "latencies",
            [({"method": "pdr"}, [0.05, 0.2, 3.0])],
            buckets=(0.1, 1.0),
        )
        sample = family["samples"][0]
        assert sample["count"] == 3
        assert sample["buckets"] == [[0.1, 1], [1.0, 2], [math.inf, 3]]


class TestQuantiles:
    def test_histogram_quantile_interpolates(self):
        buckets = [[0.1, 0], [1.0, 10], [math.inf, 10]]
        # Rank 5 of 10 lands mid-bucket (0.1, 1.0]: interpolate.
        assert histogram_quantile(0.5, buckets) == pytest.approx(0.55)
        assert histogram_quantile(1.0, buckets) == pytest.approx(1.0)

    def test_histogram_quantile_inf_bucket_returns_lower_bound(self):
        buckets = [[0.1, 0], [1.0, 0], [math.inf, 5]]
        assert histogram_quantile(0.5, buckets) == pytest.approx(1.0)

    def test_histogram_quantile_empty_and_zero_total(self):
        assert histogram_quantile(0.5, []) == 0.0
        assert histogram_quantile(0.5, [[1.0, 0], [math.inf, 0]]) == 0.0

    def test_exact_quantiles(self):
        values = [1.0, 2.0, 3.0, 4.0]
        p50, p95 = quantiles(values, (0.5, 0.95))
        assert p50 == pytest.approx(2.5)
        assert p95 == pytest.approx(3.85)
        assert quantiles([], (0.5,)) == [0.0]
        assert quantiles([7.0], (0.0, 0.5, 1.0)) == [7.0, 7.0, 7.0]


class TestSwitchboard:
    def test_enable_disable_flips_module_flag(self):
        was = metrics.ENABLED
        try:
            registry = metrics.enable()
            assert metrics.ENABLED and metrics.is_enabled()
            assert registry is metrics.REGISTRY
            metrics.disable()
            assert not metrics.ENABLED
        finally:
            (metrics.enable if was else metrics.disable)()

    def test_default_instruments_installed(self):
        doc = metrics.REGISTRY.to_json()
        for name in (
            "repro_jobs_submitted_total",
            "repro_jobs_claimed_total",
            "repro_jobs_completed_total",
            "repro_job_queue_wait_seconds",
            "repro_job_run_seconds",
            "repro_sat_solve_seconds",
            "repro_store_txn_seconds",
            "repro_http_requests_total",
            "repro_sse_streams",
        ):
            assert name in doc, name

    def test_disabled_instrumentation_leaves_no_tally(self, tmp_path):
        # The ENABLED guard contract: with metrics off, instrumented
        # code paths (store transactions, queue claims, SAT solves)
        # must not move any tally — the registry output is identical
        # before and after the work.
        from repro.sat.cnf import CNF
        from repro.sat.solver import Solver
        from repro.svc.queue import TaskQueue
        from repro.svc.store import Store

        was = metrics.ENABLED
        metrics.disable()
        try:
            metrics.REGISTRY.reset()
            before = metrics.REGISTRY.to_prometheus()
            store = Store(tmp_path / "m.sqlite")
            queue = TaskQueue(store)
            job_id = queue.submit("net x", method="bmc")
            queue.claim("w")
            queue.complete(job_id, "w", {"status": "unknown"})
            solver = Solver()
            solver.add_clause([1, 2])
            solver.solve()
            assert metrics.REGISTRY.to_prometheus() == before
        finally:
            if was:
                metrics.enable()


class TestReportQuantiles:
    def test_series_summary_carries_p50_p95(self):
        from repro.mc.result import Status, VerificationResult
        from repro.obs.report import build_report
        from repro.obs.trace import CounterRecord, Tracer
        from repro.util.stats import StatsBag

        tracer = Tracer(tick=0.0)
        for index, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            tracer.counters.append(
                CounterRecord(
                    name="svc.queue_depth", t=float(index), value=value,
                    pid=1,
                )
            )
        result = VerificationResult(
            engine="bmc", status=Status.UNKNOWN, iterations=0,
            stats=StatsBag(),
        )
        report = build_report(result, tracer)
        series = {s.name: s for s in report.series}
        assert "svc.queue_depth" in series
        summary = series["svc.queue_depth"]
        assert summary.p50 == pytest.approx(2.5)
        assert summary.p95 == pytest.approx(3.85)
        doc = report.to_dict()
        entry = next(
            s for s in doc["series"] if s["name"] == "svc.queue_depth"
        )
        assert entry["p50"] == pytest.approx(2.5)
        rendered = report.render()
        assert "p50" in rendered and "p95" in rendered
