"""Legacy setup shim.

This environment has no ``wheel`` package, so PEP 660 editable installs are
unavailable; the presence of this file lets ``pip install -e .`` fall back to
the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
