"""Experiment T18 — verification-service telemetry overhead.

The fleet-telemetry contract from the svc stats-identity tests, measured
instead of just asserted: running the durable queue + worker loop with
the metrics registry enabled and per-job tracing on must return
bit-identical verdict payloads to an unobserved run, and the wall-clock
overhead of metering + trace upload must stay a small constant factor.

Each batch submits a mix of PROVED and FAILED designs, drains it with
one in-process :class:`repro.svc.worker.Worker`, and compares:

* **plain** — metrics disabled, no job tracing (the default);
* **observed** — :mod:`repro.obs.metrics` enabled plus
  ``Worker(trace_jobs=True)``, so every job uploads a content-addressed
  obs trace with its verdict.

``obs_svc_plain_seconds`` / ``obs_svc_observed_seconds`` /
``obs_svc_overhead_ratio`` land in ``benchmarks/BENCH_BDD.json`` via
``record_json`` and feed the trajectory gate.  Set ``BENCH_TINY=1``
(CI bench-smoke) to shrink the batch.
"""

import json
import os
import time

from repro.circuits import generators as G
from repro.circuits.parse import serialize_netlist
from repro.obs import metrics as _met
from repro.svc.queue import TaskQueue
from repro.svc.store import Store
from repro.svc.worker import Worker

if os.environ.get("BENCH_TINY"):
    BATCH = [
        ("pdr", lambda: G.mod_counter(4, 12)),
        ("bmc", lambda: G.mod_counter(4, 12, safe=False)),
    ]
else:
    BATCH = [
        ("pdr", lambda: G.mod_counter(6, 40)),
        ("pdr", lambda: G.shift_register(8)),
        ("bmc", lambda: G.mod_counter(4, 12, safe=False)),
        ("bmc", lambda: G.bug_at_depth(6)),
    ]


def _run_batch(db_path, *, trace_jobs: bool):
    """Submit BATCH, drain it with one worker, return (payloads, stats)."""
    store = Store(db_path)
    try:
        queue = TaskQueue(store)
        job_ids = [
            queue.submit(serialize_netlist(build()), method=method)
            for method, build in BATCH
        ]
        start = time.perf_counter()
        Worker(store, trace_jobs=trace_jobs).run(drain=True)
        seconds = time.perf_counter() - start
        payloads, events = [], 0
        for job_id in job_ids:
            payload = dict(queue.job(job_id).result)
            payload.pop("stats")  # wall-clock noise, not verdict content
            payloads.append(payload)
            events += len(queue.events(job_id))
        return payloads, seconds, events, store.count_traces()
    finally:
        store.close()


def test_t18_svc_telemetry_overhead(
    benchmark, record_row, record_json, tmp_path
):
    was = _met.ENABLED
    _met.disable()
    try:
        plain, plain_seconds, plain_events, plain_traces = _run_batch(
            tmp_path / "plain.sqlite", trace_jobs=False
        )
        _met.enable()
        _met.REGISTRY.reset()
        observed, observed_seconds, observed_events, traces = _run_batch(
            tmp_path / "observed.sqlite", trace_jobs=True
        )
        doc = _met.REGISTRY.to_json()
    finally:
        _met.disable()
        _met.REGISTRY.reset()
        if was:
            _met.enable()

    # The zero-perturbation contract: metering and per-job tracing only
    # read timestamps and tally into private structures, so the verdict
    # payloads and the persisted event-log shape must match bit for bit.
    assert json.dumps(plain, sort_keys=True) == json.dumps(
        observed, sort_keys=True
    )
    assert observed_events == plain_events
    assert plain_traces == 0
    assert traces == len(BATCH)
    claimed = sum(
        sample["value"]
        for sample in doc["repro_jobs_claimed_total"]["samples"]
    )
    assert claimed == len(BATCH)

    overhead = (
        observed_seconds / plain_seconds if plain_seconds > 0 else 1.0
    )
    benchmark.extra_info.update(
        {
            "jobs": len(BATCH),
            "obs_svc_overhead_ratio": overhead,
            "traces_stored": traces,
        }
    )
    record_json(
        "t18_svc",
        jobs=len(BATCH),
        obs_svc_plain_seconds=plain_seconds,
        obs_svc_observed_seconds=observed_seconds,
        obs_svc_overhead_ratio=overhead,
        obs_svc_job_events=observed_events,
        obs_svc_traces_stored=traces,
    )
    record_row(
        "T18 service telemetry overhead",
        f"{'jobs':>5}{'plain':>9}{'observed':>10}{'ratio':>7}"
        f"{'events':>8}{'traces':>8}",
        f"{len(BATCH):>5d}"
        f"{plain_seconds * 1000:>7.0f}ms"
        f"{observed_seconds * 1000:>8.0f}ms"
        f"{overhead:>6.2f}x"
        f"{observed_events:>8d}"
        f"{traces:>8d}",
    )
    benchmark.pedantic(
        lambda: _run_batch(tmp_path / "bench.sqlite", trace_jobs=False),
        rounds=1, iterations=1,
    )
