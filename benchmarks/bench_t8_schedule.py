"""Experiment T8 — variable-ordering ablation for multi-var quantification.

Quantifying k input variables one at a time is order sensitive: meeting an
entangled variable early inflates every later step.  This bench sweeps the
four registered schedules over multi-variable existential quantification
and reports peak and final circuit sizes.

Shape claim: analysis-guided orders (min_dependence, cofactor_probe) keep
the peak at or below the static caller order; cofactor_probe pays more
analysis per step but picks the highest-merge-yield variable, the paper's
"similar cofactors" case.
"""

import pytest

from repro.circuits.combinational import (
    adder_sum_parity,
    mux_tree,
    random_logic,
)
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.schedule import scheduler_names

FAMILIES = {
    "adder_parity8": lambda: adder_sum_parity(8),
    "mux_tree3": lambda: mux_tree(3),
    "random_12x90": lambda: random_logic(12, 90, seed=31),
}

NUM_VARS = 4


@pytest.mark.parametrize("family", list(FAMILIES))
@pytest.mark.parametrize("schedule", scheduler_names())
def test_t8_schedule_ablation(benchmark, record_row, family, schedule):
    def run():
        aig, inputs, root = FAMILIES[family]()
        variables = [e >> 1 for e in inputs[:NUM_VARS]]
        options = QuantifyOptions.preset("full")
        options.schedule = schedule
        outcome = quantify_exists(aig, root, variables, options)
        return (
            int(outcome.stats.get("initial_size")),
            int(outcome.stats.get("peak_size")),
            outcome.size,
        )

    initial, peak, final = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "family": family,
            "schedule": schedule,
            "initial_size": initial,
            "peak_size": peak,
            "final_size": final,
        }
    )
    record_row(
        "T8 quantification schedules",
        f"{'family':<16}{'schedule':<16}{'initial':>8}{'peak':>7}{'final':>7}",
        f"{family:<16}{schedule:<16}{initial:>8}{peak:>7}{final:>7}",
    )
