"""Experiment T15 — interpolation vs. BMC vs. BDD traversal on deep
PROVED instances.

The workload the itp engine exists for: properties whose proofs need the
whole (exponentially deep) state space.  BMC is structurally incapable
of a PROVED verdict, and backward BDD traversal pays per reachable
state; interpolation converges once the over-approximate image lands on
an inductive set, so its cost tracks interpolant size, not diameter.

For every family the three engines run under one depth budget; wall
times, verdicts, iteration counts and proof/interpolant sizes land in
``benchmarks/BENCH_BDD.json`` via ``record_json``.  Set ``BENCH_TINY=1``
(CI bench-smoke) to shrink the instances.
"""

import os
import time

import pytest

from repro.circuits import generators as G
from repro.itp import ItpOptions
from repro.mc import verify
from repro.mc.result import Status

if os.environ.get("BENCH_TINY"):
    FAMILIES = {
        "mod_counter_16": lambda: G.mod_counter(16),
        "mod_counter_24": lambda: G.mod_counter(24),
        "ring_counter_8": lambda: G.ring_counter(8),
        "updown_8": lambda: G.up_down_counter(8),
    }
    MAX_DEPTH = 16
else:
    FAMILIES = {
        "mod_counter_64": lambda: G.mod_counter(64),
        "mod_counter_128": lambda: G.mod_counter(128),
        "ring_counter_12": lambda: G.ring_counter(12),
        "updown_16": lambda: G.up_down_counter(16),
        "gray_counter_10": lambda: G.gray_counter(10),
    }
    MAX_DEPTH = 32

ENGINES = ("itp", "bmc", "reach_bdd")


def _run(engine, netlist):
    if engine == "itp":
        options = {"options": ItpOptions(max_depth=MAX_DEPTH)}
    else:
        options = {"max_depth": MAX_DEPTH}
    start = time.perf_counter()
    result = verify(netlist, method=engine, **options)
    return time.perf_counter() - start, result


@pytest.mark.parametrize("design", list(FAMILIES))
def test_t15_itp_vs_bounded_and_bdd(
    benchmark, record_row, record_json, design
):
    build = FAMILIES[design]
    timings, results = {}, {}
    for engine in ENGINES:
        timings[engine], results[engine] = _run(engine, build())

    # The deep-PROVED contract: interpolation proves every family (with
    # each refutation replayed through the independent checker), BMC
    # never can, and the complete engines agree.
    itp_result = results["itp"]
    assert itp_result.status is Status.PROVED
    assert itp_result.stats.get("proofs_checked") >= 1
    assert results["bmc"].status is Status.UNKNOWN
    assert results["reach_bdd"].status is Status.PROVED

    benchmark.pedantic(
        lambda: verify(
            build(), method="itp",
            options=ItpOptions(max_depth=MAX_DEPTH),
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        {
            "design": design,
            "itp_iterations": itp_result.iterations,
            "itp_depth": itp_result.stats.get("itp_depth"),
            "proof_nodes": itp_result.stats.get("proof_nodes"),
            "interpolant_nodes": itp_result.stats.get(
                "interpolant_nodes"
            ),
            "speedup_vs_bdd": timings["reach_bdd"] / timings["itp"],
        }
    )
    record_json(
        "t15_itp",
        design=design,
        itp_seconds=timings["itp"],
        bmc_seconds=timings["bmc"],
        reach_bdd_seconds=timings["reach_bdd"],
        itp_iterations=itp_result.iterations,
        itp_depth=itp_result.stats.get("itp_depth"),
        proof_nodes=itp_result.stats.get("proof_nodes"),
        interpolant_nodes=itp_result.stats.get("interpolant_nodes"),
        itp_verdict=itp_result.status.value,
        bmc_verdict=results["bmc"].status.value,
        reach_bdd_verdict=results["reach_bdd"].status.value,
    )
    record_row(
        "T15 interpolation vs bounded/BDD engines (deep PROVED)",
        f"{'design':<18}{'itp':>9}{'bmc':>9}{'bdd':>9}"
        f"{'iters':>7}{'depth':>7}{'itp_nodes':>11}",
        f"{design:<18}{timings['itp'] * 1000:>7.0f}ms"
        f"{timings['bmc'] * 1000:>7.0f}ms"
        f"{timings['reach_bdd'] * 1000:>7.0f}ms"
        f"{itp_result.iterations:>7d}"
        f"{itp_result.stats.get('itp_depth'):>7.0f}"
        f"{itp_result.stats.get('interpolant_nodes'):>11.0f}",
    )
