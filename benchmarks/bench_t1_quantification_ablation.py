"""Experiment T1 — quantification ablation ladder.

For each combinational family, existentially quantify a block of inputs
under every engine preset and record the resulting circuit size.  Shape
claim reproduced: plain Shannon grows roughly 2x per variable while the
merge + optimization pipeline contains the growth (often collapsing the
result outright).
"""

import pytest

from repro.circuits.combinational import (
    adder_sum_parity,
    comparator,
    equality_with_constant_slices,
    random_logic,
)
from repro.core import QuantifyOptions, quantify_exists

PRESETS = ["shannon", "hash", "bdd", "sat", "full"]

FAMILIES = {
    "comparator8": (lambda: comparator(8), 5),
    "adder_parity6": (lambda: adder_sum_parity(6), 4),
    "random_12x120": (lambda: random_logic(12, 120, seed=7), 5),
    "slices_4x3": (lambda: equality_with_constant_slices(4, 3), 4),
}


@pytest.mark.parametrize("family", list(FAMILIES))
@pytest.mark.parametrize("preset", PRESETS)
def test_t1_quantification(benchmark, record_row, family, preset):
    build, num_vars = FAMILIES[family]

    def run():
        aig, inputs, root = build()
        variables = [e >> 1 for e in inputs[:num_vars]]
        outcome = quantify_exists(
            aig, root, variables, QuantifyOptions.preset(preset)
        )
        return aig, outcome

    aig, outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    size = aig.cone_and_count(outcome.edge)
    benchmark.extra_info.update(
        {
            "family": family,
            "preset": preset,
            "final_size": size,
            "peak_size": outcome.stats.get("peak_size"),
            "initial_size": outcome.stats.get("initial_size"),
            "sat_checks": outcome.stats.get("sat_checks", 0),
        }
    )
    record_row(
        "T1 quantification ablation",
        f"{'family':<16}{'preset':<10}{'initial':>8}{'peak':>8}"
        f"{'final':>8}{'sat_checks':>12}",
        f"{family:<16}{preset:<10}"
        f"{outcome.stats.get('initial_size'):>8.0f}"
        f"{outcome.stats.get('peak_size'):>8.0f}{size:>8}"
        f"{outcome.stats.get('sat_checks', 0):>12.0f}",
    )
