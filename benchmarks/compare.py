"""Per-PR benchmark trajectory: consolidation and regression gating.

Every recording benchmark session rewrites ``benchmarks/BENCH_BDD.json``
with that session's records — a snapshot, not a history.  This tool
folds snapshots into ``benchmarks/TRAJECTORY.json``, an append-only list
of labelled entries, and gates a fresh snapshot against the last entry
of the same profile:

    # archive the current snapshot under a label
    python benchmarks/compare.py record --label pr7-after --profile full

    # fail (exit 1) if any timing regressed >20% vs the last entry
    python benchmarks/compare.py gate --profile tiny --threshold 1.2

Records are matched on ``(benchmark, design)``; every numeric field
ending in ``_seconds`` is a timing metric.  The gate's default mode is
``relative``: each timing is normalised by the snapshot's total wall
time before comparison, so a uniformly slower CI runner does not trip
the gate but a *disproportionate* slowdown of one kernel does.  Pass
``--mode absolute`` for same-machine comparisons.  Tiny timings are
noise-dominated, so metrics under ``--floor-ms`` (default 25ms in the
slower run) are never flagged.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent
SNAPSHOT = BENCH_DIR / "BENCH_BDD.json"
TRAJECTORY = BENCH_DIR / "TRAJECTORY.json"


def _load_snapshot(path: pathlib.Path) -> list[dict]:
    if not path.exists():
        sys.exit(f"no benchmark snapshot at {path}; run the benchmarks first")
    return json.loads(path.read_text())


def _load_trajectory() -> list[dict]:
    if not TRAJECTORY.exists():
        return []
    return json.loads(TRAJECTORY.read_text())


def _timings(records: list[dict]) -> dict[tuple, dict[str, float]]:
    """``(benchmark, design) -> {metric: seconds}`` for one snapshot."""
    out: dict[tuple, dict[str, float]] = {}
    for record in records:
        key = (record.get("benchmark"), record.get("design"))
        metrics = out.setdefault(key, {})
        for field, value in record.items():
            if field.endswith("_seconds") and isinstance(value, (int, float)):
                metrics[field] = float(value)
    return out


def _total(timings: dict[tuple, dict[str, float]]) -> float:
    return sum(v for metrics in timings.values() for v in metrics.values())


def cmd_record(args: argparse.Namespace) -> int:
    records = _load_snapshot(pathlib.Path(args.snapshot))
    trajectory = _load_trajectory()
    trajectory.append(
        {
            "label": args.label,
            "profile": args.profile,
            "records": records,
        }
    )
    TRAJECTORY.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"recorded {len(records)} records as '{args.label}' "
        f"(profile={args.profile}); trajectory has {len(trajectory)} entries"
    )
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    current = _timings(_load_snapshot(pathlib.Path(args.snapshot)))
    trajectory = [
        entry for entry in _load_trajectory()
        if entry.get("profile") == args.profile
    ]
    if not trajectory:
        print(
            f"no trajectory entry with profile '{args.profile}' — "
            "gate passes vacuously (record a baseline first)"
        )
        return 0
    baseline_entry = trajectory[-1]
    baseline = _timings(baseline_entry["records"])

    cur_total = _total(current) or 1.0
    base_total = _total(baseline) or 1.0
    floor = args.floor_ms / 1000.0

    failures: list[str] = []
    compared = 0
    for key, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(key)
        if cur_metrics is None:
            continue
        for metric, base_value in sorted(base_metrics.items()):
            cur_value = cur_metrics.get(metric)
            if cur_value is None:
                continue
            compared += 1
            if max(base_value, cur_value) < floor:
                continue
            if args.mode == "relative":
                old = base_value / base_total
                new = cur_value / cur_total
            else:
                old = base_value
                new = cur_value
            if old <= 0.0:
                continue
            ratio = new / old
            line = (
                f"{key[0]}/{key[1]} {metric}: "
                f"{base_value * 1000:.1f}ms -> {cur_value * 1000:.1f}ms "
                f"({args.mode} ratio {ratio:.2f}x)"
            )
            if ratio > args.threshold:
                failures.append(line)
            elif args.verbose:
                print("ok   " + line)
    print(
        f"gate: {compared} timings compared against "
        f"'{baseline_entry['label']}' (profile={args.profile}, "
        f"threshold {args.threshold:.2f}x, mode={args.mode})"
    )
    if failures:
        print(f"FAIL: {len(failures)} regression(s) above threshold:")
        for line in failures:
            print("  " + line)
        return 1
    print("PASS: no regression above threshold")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="append the current snapshot to the trajectory"
    )
    record.add_argument("--label", required=True)
    record.add_argument("--profile", default="full",
                        choices=("full", "tiny"))
    record.add_argument("--snapshot", default=str(SNAPSHOT))
    record.set_defaults(func=cmd_record)

    gate = sub.add_parser(
        "gate", help="fail on timing regressions vs the last entry"
    )
    gate.add_argument("--profile", default="full", choices=("full", "tiny"))
    gate.add_argument("--threshold", type=float, default=1.2)
    gate.add_argument("--mode", default="relative",
                      choices=("relative", "absolute"))
    gate.add_argument("--floor-ms", type=float, default=25.0)
    gate.add_argument("--snapshot", default=str(SNAPSHOT))
    gate.add_argument("--verbose", action="store_true")
    gate.set_defaults(func=cmd_gate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
