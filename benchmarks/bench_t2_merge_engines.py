"""Experiment T2 — merge-phase engines on cofactor pairs.

Counts the merge points each engine finds between the two cofactors of a
Shannon split: structural hashing alone, + BDD sweeping, + SAT checks.
Shape claim: hashing catches the free merges, BDD sweeping more, SAT the
rest; the factorized incremental SAT session resolves every remaining
compare point.
"""

import pytest

from repro.aig.analysis import shared_nodes, sharing_ratio
from repro.aig.ops import cofactor
from repro.circuits.combinational import (
    adder_sum_parity,
    equality_with_constant_slices,
    random_logic,
)
from repro.sweep.bddsweep import bdd_sweep
from repro.sweep.satsweep import SatSweeper

FAMILIES = {
    "adder_parity8": lambda: adder_sum_parity(8),
    "slices_4x3": lambda: equality_with_constant_slices(4, 3),
    "random_10x100": lambda: random_logic(10, 100, seed=3),
}

ENGINES = ["hash", "bdd", "sat"]


@pytest.mark.parametrize("family", list(FAMILIES))
@pytest.mark.parametrize("engine", ENGINES)
def test_t2_merge_engines(benchmark, record_row, family, engine):
    def run():
        aig, inputs, root = FAMILIES[family]()
        var = inputs[0] >> 1
        cof0 = cofactor(aig, root, var, False)
        cof1 = cofactor(aig, root, var, True)
        before = shared_nodes(aig, cof0, cof1)
        stats = {}
        if engine == "hash":
            new0, new1 = cof0, cof1  # hashing already applied at build
        elif engine == "bdd":
            (new0, new1), _, bdd_stats = bdd_sweep(aig, [cof0, cof1])
            stats = bdd_stats.as_dict()
        else:
            sweeper = SatSweeper(aig)
            (new0, new1), _ = sweeper.sweep([cof0, cof1])
            stats = sweeper.stats.as_dict()
        after = shared_nodes(aig, new0, new1)
        ratio = sharing_ratio(aig, new0, new1)
        return before, after, ratio, stats

    before, after, ratio, stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "family": family,
            "engine": engine,
            "shared_before": before,
            "shared_after": after,
            "sharing_ratio": round(ratio, 3),
            "sat_checks": stats.get("sat_checks", 0),
            "merges": stats.get("sat_merges", 0) + stats.get("bdd_merges", 0),
        }
    )
    record_row(
        "T2 merge engines",
        f"{'family':<16}{'engine':<7}{'shared_before':>14}"
        f"{'shared_after':>13}{'ratio':>7}{'sat_checks':>11}",
        f"{family:<16}{engine:<7}{before:>14}{after:>13}"
        f"{ratio:>7.2f}{stats.get('sat_checks', 0):>11.0f}",
    )
