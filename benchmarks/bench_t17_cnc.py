"""Experiment T17 — cube-and-conquer vs. monolithic SAT engines.

Two workloads the ``cnc`` engine was built for:

* **multiplier miters** — wide-input, deep combinational equivalence
  cones.  One monolithic SAT call (what BMC does at depth 0) pays the
  full conflict bill; the Cube stage's lookahead splits drop it, and a
  PROVED verdict falls out where BMC is structurally stuck at UNKNOWN.
* **deep counters** — planted bugs hundreds of steps in.  BMC sweeps
  one depth per solver call; ``cnc`` unrolls once into a single
  "violation within <= bound" target whose cubes solve concurrently.

The headline record (``cnc_beats_bmc``): on at least one instance, cnc
with 4 workers beats single-core BMC wall-clock — asserted on the deep
counter where the margin is structural, recorded everywhere.  A worker
sweep (1/2/4/8) records the scaling shape on the hardest miter; on a
single-core container the useful signal is that decomposition, not
parallel hardware, carries the win.

Wall times and verdicts land in ``benchmarks/BENCH_BDD.json`` via
``record_json``.  Set ``BENCH_TINY=1`` (CI bench-smoke) to shrink the
instances.
"""

import os
import time

import pytest

from repro.circuits import generators as G
from repro.mc import verify
from repro.mc.result import Status

if os.environ.get("BENCH_TINY"):
    MITER_FAMILIES = {
        "mul_miter_3": lambda: G.multiplier_miter(3),
        "mul_miter_4": lambda: G.multiplier_miter(4),
        "mul_miter_4_buggy": lambda: G.multiplier_miter(4, safe=False),
    }
    DEEP_FAMILIES = {
        "mod_counter_8_120_buggy": (
            lambda: G.mod_counter(8, 120, safe=False), 128),
    }
    SCALING_DESIGN = ("mul_miter_4", lambda: G.multiplier_miter(4))
    CUBE_DEPTH = 2
else:
    MITER_FAMILIES = {
        "mul_miter_4": lambda: G.multiplier_miter(4),
        "mul_miter_5": lambda: G.multiplier_miter(5),
        "mul_miter_5_buggy": lambda: G.multiplier_miter(5, safe=False),
    }
    DEEP_FAMILIES = {
        "mod_counter_8_250_buggy": (
            lambda: G.mod_counter(8, 250, safe=False), 255),
        "bug_at_depth_30": (lambda: G.bug_at_depth(30), 34),
    }
    SCALING_DESIGN = ("mul_miter_5", lambda: G.multiplier_miter(5))
    CUBE_DEPTH = 2

WORKER_SWEEP = (1, 2, 4, 8)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _cnc(build, max_depth=0, workers=4):
    return verify(
        build(), method="cnc", max_depth=max_depth, workers=workers,
        cube_depth=CUBE_DEPTH, candidates_limit=6,
    )


@pytest.mark.parametrize("design", list(MITER_FAMILIES))
def test_t17_cnc_on_miters(benchmark, record_row, record_json, design):
    build = MITER_FAMILIES[design]
    bmc_seconds, bmc_result = _timed(
        lambda: verify(build(), method="bmc", max_depth=0)
    )
    cnc_seconds, cnc_result = _timed(lambda: _cnc(build))
    portfolio_seconds, portfolio_result = _timed(
        lambda: verify(
            build(), method="portfolio", max_depth=0, budget=60.0,
            policy="predict",
        )
    )

    # Verdict contract: on buggy miters everyone finds the bug and the
    # cnc trace replays; on safe ones cnc upgrades BMC's bound-exhausted
    # UNKNOWN to a genuine PROVED (depth 0 of a combinational design is
    # the whole space).
    if design.endswith("_buggy"):
        assert cnc_result.status is Status.FAILED
        assert bmc_result.status is Status.FAILED
        assert cnc_result.trace.validate(build())
    else:
        assert cnc_result.status is Status.PROVED
        assert bmc_result.status is Status.UNKNOWN
    assert portfolio_result.status is cnc_result.status

    record_json(
        "t17_cnc",
        design=design,
        kind="miter",
        cnc_seconds=cnc_seconds,
        bmc_seconds=bmc_seconds,
        portfolio_seconds=portfolio_seconds,
        cnc_workers=4,
        cnc_cubes=cnc_result.stats.get("cnc_cubes"),
        cnc_refuted_by_lookahead=cnc_result.stats.get(
            "cnc_refuted_by_lookahead"
        ),
        cnc_conflicts=cnc_result.stats.get("cnc_conflicts"),
        cnc_verdict=cnc_result.status.value,
        bmc_verdict=bmc_result.status.value,
        portfolio_verdict=portfolio_result.status.value,
        cnc_beats_bmc=cnc_seconds < bmc_seconds,
    )
    record_row(
        "T17 cube-and-conquer vs monolithic SAT",
        f"{'design':<24}{'kind':<9}{'cnc':>9}{'bmc':>9}{'pfolio':>9}"
        f"{'cubes':>7}{'refut':>7}",
        f"{design:<24}{'miter':<9}"
        f"{cnc_seconds * 1000:>7.0f}ms"
        f"{bmc_seconds * 1000:>7.0f}ms"
        f"{portfolio_seconds * 1000:>7.0f}ms"
        f"{cnc_result.stats.get('cnc_cubes', 0):>7.0f}"
        f"{cnc_result.stats.get('cnc_refuted_by_lookahead', 0):>7.0f}",
    )
    benchmark.pedantic(lambda: _cnc(build), rounds=1, iterations=1)


@pytest.mark.parametrize("design", list(DEEP_FAMILIES))
def test_t17_cnc_on_deep_counters(
    benchmark, record_row, record_json, design
):
    build, max_depth = DEEP_FAMILIES[design]
    bmc_seconds, bmc_result = _timed(
        lambda: verify(build(), method="bmc", max_depth=max_depth)
    )
    cnc_seconds, cnc_result = _timed(
        lambda: _cnc(build, max_depth=max_depth)
    )

    assert bmc_result.status is Status.FAILED
    assert cnc_result.status is Status.FAILED
    assert cnc_result.trace.validate(build())
    assert cnc_result.iterations == bmc_result.iterations
    # The acceptance record: one deep unrolling conquered in cubes beats
    # the engine that must sweep every depth on one core.
    if design.startswith("mod_counter"):
        assert cnc_seconds < bmc_seconds, (cnc_seconds, bmc_seconds)

    record_json(
        "t17_cnc",
        design=design,
        kind="deep_counter",
        cnc_seconds=cnc_seconds,
        bmc_seconds=bmc_seconds,
        cnc_workers=4,
        cnc_cubes=cnc_result.stats.get("cnc_cubes"),
        cnc_verdict=cnc_result.status.value,
        bmc_verdict=bmc_result.status.value,
        depth=cnc_result.iterations,
        cnc_beats_bmc=cnc_seconds < bmc_seconds,
    )
    record_row(
        "T17 cube-and-conquer vs monolithic SAT",
        f"{'design':<24}{'kind':<9}{'cnc':>9}{'bmc':>9}{'pfolio':>9}"
        f"{'cubes':>7}{'refut':>7}",
        f"{design:<24}{'deep':<9}"
        f"{cnc_seconds * 1000:>7.0f}ms"
        f"{bmc_seconds * 1000:>7.0f}ms"
        f"{'-':>9}"
        f"{cnc_result.stats.get('cnc_cubes', 0):>7.0f}"
        f"{'-':>7}",
    )
    benchmark.pedantic(
        lambda: _cnc(build, max_depth=max_depth), rounds=1, iterations=1
    )


def test_t17_worker_scaling(benchmark, record_row, record_json):
    design, build = SCALING_DESIGN
    timings = {}
    for workers in WORKER_SWEEP:
        seconds, result = _timed(
            lambda: _cnc(build, workers=workers)
        )
        assert result.status is Status.PROVED
        timings[workers] = seconds

    record_json(
        "t17_cnc_scaling",
        design=design,
        **{f"workers_{w}_seconds": s for w, s in timings.items()},
    )
    record_row(
        "T17 conquer-pool worker sweep",
        f"{'design':<24}" + "".join(f"{f'w={w}':>9}" for w in WORKER_SWEEP),
        f"{design:<24}" + "".join(
            f"{timings[w] * 1000:>7.0f}ms" for w in WORKER_SWEEP
        ),
    )
    benchmark.pedantic(
        lambda: _cnc(build, workers=2), rounds=1, iterations=1
    )
