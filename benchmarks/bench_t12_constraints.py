"""Experiment T12 — environment constraints prune the traversal.

Constraints (assume-invariants) shrink the transition relation the
engines explore: pre-images conjoin them before quantifying, frames
assert them.  This bench compares traversal effort on the buggy arbiter
family with and without its intended-environment assumption ("at most
one request per cycle").

Shape claim: unconstrained runs find the request collision immediately;
constrained runs must exhaust the (pruned) reachable space and prove the
design safe, with frontier sizes bounded by the constraint conjunction.
"""

import pytest

from repro.aig.graph import edge_not
from repro.aig.ops import and_all
from repro.circuits.generators import arbiter

CLIENTS = [3, 4, 5]
MODES = ["unconstrained", "constrained"]


def build(clients: int, constrained: bool):
    netlist = arbiter(clients, safe=False)
    if constrained:
        aig = netlist.aig
        requests = [2 * node for node in netlist.input_nodes]
        netlist.add_constraint(and_all(aig, [
            edge_not(aig.and_(requests[i], requests[j]))
            for i in range(clients) for j in range(i + 1, clients)
        ]))
    return netlist


@pytest.mark.parametrize("clients", CLIENTS)
@pytest.mark.parametrize("mode", MODES)
def test_t12_constraint_pruning(benchmark, record_row, session, clients, mode):
    def run():
        return session.verify(
            build(clients, mode == "constrained"), engine="reach_aig"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    peak = result.stats.get("peak_frontier_size", 0)
    benchmark.extra_info.update(
        {
            "clients": clients,
            "mode": mode,
            "status": result.status.value,
            "iterations": result.iterations,
            "peak_frontier": peak,
        }
    )
    record_row(
        "T12 environment constraints",
        f"{'clients':<9}{'mode':<15}{'status':<9}{'iters':>6}{'peak':>7}",
        f"{clients:<9}{mode:<15}{result.status.value:<9}"
        f"{result.iterations:>6}{peak:>7.0f}",
    )
