"""Experiment T14 — monolithic vs scheduled partitioned BDD image.

The paper's thesis is that *when* you quantify matters as much as *what*
you quantify.  This experiment measures exactly that on the BDD engine:
one post-image of the full reached state set, computed

* **monolithic** — conjoin the entire transition relation onto the state
  set, then quantify every current-state/input variable (the seed
  pipeline), vs
* **scheduled** — clustered partitioned relation, conjunction order and
  early-quantification points chosen by the :mod:`repro.core.schedule`
  heuristics, each variable eliminated by a fused ``and_exists`` as soon
  as no later cluster depends on it.

Caches are cleared before the measured image so both pipelines pay their
real traversal-step cost (a warm cache would just replay the answer).
Per-family wall times, node counts, cache hit rates and the speedup land
in ``benchmarks/BENCH_BDD.json`` via ``record_json``.

Set ``BENCH_TINY=1`` to run on CI-smoke-sized inputs.
"""

import os
import time

import pytest

from repro.circuits import generators as G
from repro.mc.reach_bdd import BddReachOptions, _BddModel

if os.environ.get("BENCH_TINY"):
    FAMILIES = {
        "mod_counter_6_40": lambda: G.mod_counter(6, 40),
        "gray_counter_5": lambda: G.gray_counter(5),
        "fifo_level_4": lambda: G.fifo_level(4),
        "updown_5": lambda: G.up_down_counter(5),
        "onehot_8": lambda: G.one_hot_fsm(8),
        "arbiter_6": lambda: G.arbiter(6),
    }
else:
    FAMILIES = {
        "mod_counter_12_3000": lambda: G.mod_counter(12, 3000),
        "gray_counter_10": lambda: G.gray_counter(10),
        "fifo_level_8": lambda: G.fifo_level(8),
        "updown_12": lambda: G.up_down_counter(12),
        "onehot_16": lambda: G.one_hot_fsm(16),
        "arbiter_12": lambda: G.arbiter(12),
    }


def _fixpoint_reached(model):
    """The full reached state set (computed with the fast pipeline)."""
    manager = model.manager
    frontier = reached = model.init
    iterations = 0
    while frontier != 0:
        iterations += 1
        image = model.postimage_scheduled(frontier)
        frontier = manager.and_(image, manager.not_(reached))
        reached = manager.or_(reached, frontier)
    return reached, iterations


def _timed_image(model, reached, mode):
    """One cold post-image of ``reached``; returns (seconds, result node)."""
    compute = (
        model.postimage_monolithic
        if mode == "monolithic"
        else model.postimage_scheduled
    )
    model.manager.clear_caches()
    start = time.perf_counter()
    result = compute(reached)
    return time.perf_counter() - start, result


@pytest.mark.parametrize("design", list(FAMILIES))
def test_t14_bdd_image(benchmark, record_row, record_json, design):
    build = FAMILIES[design]
    timings = {}
    sat_counts = {}
    cache_hit_rates = {}
    manager_nodes = {}
    iterations = 0
    for mode in ("monolithic", "scheduled"):
        model = _BddModel(build(), BddReachOptions(image=mode))
        reached, iterations = _fixpoint_reached(model)
        seconds, image = _timed_image(model, reached, mode)
        timings[mode] = seconds
        num_vars = model.manager.num_vars
        sat_counts[mode] = model.manager.sat_count(image, num_vars)
        cache_hit_rates[mode] = model.manager.cache_summary()[
            "cache_hit_rate"
        ]
        manager_nodes[mode] = model.manager.num_nodes
        if mode == "scheduled":
            benchmark.pedantic(
                lambda: _timed_image(model, reached, "scheduled"),
                rounds=1,
                iterations=1,
            )
    # Same image from both pipelines (managers differ, counts must not).
    assert sat_counts["monolithic"] == sat_counts["scheduled"]
    speedup = timings["monolithic"] / max(timings["scheduled"], 1e-9)
    benchmark.extra_info.update(
        {
            "design": design,
            "monolithic_seconds": timings["monolithic"],
            "scheduled_seconds": timings["scheduled"],
            "speedup": speedup,
            "iterations": iterations,
        }
    )
    record_row(
        "T14 BDD image: monolithic vs scheduled",
        f"{'design':<22}{'mono_ms':>10}{'sched_ms':>10}{'speedup':>9}",
        f"{design:<22}{timings['monolithic'] * 1000:>10.2f}"
        f"{timings['scheduled'] * 1000:>10.2f}{speedup:>8.1f}x",
    )
    record_json(
        f"t14_bdd_image[{design}]",
        design=design,
        monolithic_wall_seconds=timings["monolithic"],
        scheduled_wall_seconds=timings["scheduled"],
        speedup=speedup,
        fixpoint_iterations=iterations,
        monolithic_manager_nodes=manager_nodes["monolithic"],
        scheduled_manager_nodes=manager_nodes["scheduled"],
        monolithic_cache_hit_rate=cache_hit_rates["monolithic"],
        scheduled_cache_hit_rate=cache_hit_rates["scheduled"],
    )
