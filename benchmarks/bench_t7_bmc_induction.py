"""Experiment T7 — quantification preprocessing for BMC and induction.

Section 4: "Both these techniques can benefit from reducing the amount of
primary input variables by quantification as a preprocessing of SAT
procedures."  Pre-image folding replaces unrolled frames (and their input
variables) with circuit-quantified targets; we measure frames unrolled,
CNF variables and wall time, with and without folding.
"""

import pytest

from repro.circuits import generators as G
from repro.mc.bmc import bmc
from repro.mc.induction import k_induction

BMC_DESIGNS = {
    "bug_at_depth_12": (lambda: G.bug_at_depth(12), 16),
    "mod_counter_bug_5_24": (lambda: G.mod_counter(5, 24, safe=False), 28),
}


@pytest.mark.parametrize("design", list(BMC_DESIGNS))
@pytest.mark.parametrize("folds", [0, 2, 4])
def test_t7_bmc_folding(benchmark, record_row, design, folds):
    build, depth = BMC_DESIGNS[design]

    def run():
        return bmc(build(), max_depth=depth, preimage_folds=folds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.failed
    benchmark.extra_info.update(
        {
            "design": design,
            "folds": folds,
            "frames": result.stats.get("frames_unrolled"),
            "cnf_vars": result.stats.get("cnf_vars"),
            "cex_depth": result.trace.depth,
        }
    )
    record_row(
        "T7a BMC with pre-image folding",
        f"{'design':<22}{'folds':>6}{'frames':>8}{'cnf_vars':>10}"
        f"{'cex_depth':>10}",
        f"{design:<22}{folds:>6}"
        f"{result.stats.get('frames_unrolled'):>8.0f}"
        f"{result.stats.get('cnf_vars'):>10.0f}{result.trace.depth:>10}",
    )


INDUCTION_DESIGNS = {
    "mod_counter_5_20": (lambda: G.mod_counter(5, 20), 8),
    "shift_register_6": (lambda: G.shift_register(6), 6),
}


@pytest.mark.parametrize("design", list(INDUCTION_DESIGNS))
@pytest.mark.parametrize("folds", [0, 1])
def test_t7_induction_folding(benchmark, record_row, design, folds):
    build, max_k = INDUCTION_DESIGNS[design]

    def run():
        return k_induction(build(), max_k=max_k, preimage_folds=folds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.proved
    benchmark.extra_info.update(
        {
            "design": design,
            "folds": folds,
            "proved_at_k": result.stats.get("proved_at_k"),
            "base_sat_calls": result.stats.get("base_sat_calls"),
            "step_sat_calls": result.stats.get("step_sat_calls"),
        }
    )
    record_row(
        "T7b induction with pre-image folding",
        f"{'design':<20}{'folds':>6}{'proved_at_k':>12}"
        f"{'base_calls':>11}{'step_calls':>11}",
        f"{design:<20}{folds:>6}"
        f"{result.stats.get('proved_at_k'):>12.0f}"
        f"{result.stats.get('base_sat_calls'):>11.0f}"
        f"{result.stats.get('step_sat_calls'):>11.0f}",
    )
