"""Experiment T3 — backward vs. forward SAT-merge processing order.

The paper: "Backward processing is generally better in case of high merge
probability (similar cofactors) ... Forward processing is more similar to
the BDD sweeping technique."  We count SAT checks needed by each order on
a high-similarity workload (slice equality: cofactors share almost
everything) and a low-similarity one (random logic).
"""

import pytest

from repro.aig.ops import cofactor
from repro.circuits.combinational import (
    equality_with_constant_slices,
    mux_of_variants,
)
from repro.core.merge import MergeOptions, merge_cofactors

WORKLOADS = {
    "similar_variants_8": (
        lambda: mux_of_variants(8, similar=True),
        "high merge probability",
    ),
    "dissimilar_variants_8": (
        lambda: mux_of_variants(8, similar=False),
        "low merge probability",
    ),
    "similar_slices_5x3": (
        lambda: equality_with_constant_slices(5, 3),
        "structurally shared cofactors (hashing suffices)",
    ),
}


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("order", ["backward", "forward"])
def test_t3_merge_order(benchmark, record_row, workload, order):
    build, note = WORKLOADS[workload]

    def run():
        aig, inputs, root = build()
        var = inputs[0] >> 1
        cof0 = cofactor(aig, root, var, False)
        cof1 = cofactor(aig, root, var, True)
        _, _, stats = merge_cofactors(
            aig, cof0, cof1,
            MergeOptions(order=order, use_bdd_sweep=False),
        )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    checks = stats.get("merge_sat_checks")
    merges = stats.get("backward_merges", 0) + stats.get("sat_merges", 0)
    benchmark.extra_info.update(
        {
            "workload": workload,
            "order": order,
            "sat_checks": checks,
            "merges": merges,
        }
    )
    record_row(
        "T3 merge order (backward vs forward)",
        f"{'workload':<22}{'order':<10}{'sat_checks':>11}{'merges':>8}",
        f"{workload:<22}{order:<10}{checks:>11.0f}{merges:>8.0f}",
    )
