"""Experiment T4 — unbounded model checking: AIG vs. BDD state sets.

The headline comparison: the paper's backward traversal with circuit-based
quantification against classical BDD reachability, on safe and buggy
designs.  Reported per run: verdict, traversal iterations, peak state-set
representation size (AND nodes vs. BDD nodes) and wall time.
"""

import pytest

from repro.api import VerificationTask
from repro.circuits import generators as G

BENCHMARKS = {
    "mod_counter_5_20": lambda: G.mod_counter(5, 20),
    "mod_counter_bug": lambda: G.mod_counter(5, 20, safe=False),
    "ring_counter_8": lambda: G.ring_counter(8),
    "arbiter_4": lambda: G.arbiter(4),
    "fifo_level_4": lambda: G.fifo_level(4),
    "gray_counter_4": lambda: G.gray_counter(4),
    "lfsr_5": lambda: G.lfsr(5),
    "johnson_6": lambda: G.johnson_counter(6),
    "updown_4_bug": lambda: G.up_down_counter(4, safe=False),
    "onehot_6": lambda: G.one_hot_fsm(6),
}

ENGINES = ["reach_aig", "reach_bdd"]


@pytest.mark.parametrize("design", list(BENCHMARKS))
@pytest.mark.parametrize("engine", ENGINES)
def test_t4_reachability(
    benchmark, record_row, record_json, session, design, engine
):
    import time

    wall = {}

    def run():
        start = time.perf_counter()
        result = session.run(
            VerificationTask(BENCHMARKS[design](), engine=engine, max_depth=200)
        )
        wall["seconds"] = time.perf_counter() - start
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    peak = result.stats.get(
        "peak_frontier_size" if engine == "reach_aig" else "peak_frontier_bdd"
    )
    benchmark.extra_info.update(
        {
            "design": design,
            "engine": engine,
            "status": result.status.value,
            "iterations": result.iterations,
            "peak_representation": peak,
        }
    )
    record_row(
        "T4 reachability AIG vs BDD",
        f"{'design':<18}{'engine':<11}{'status':<9}{'iters':>6}"
        f"{'peak_repr':>10}",
        f"{design:<18}{engine:<11}{result.status.value:<9}"
        f"{result.iterations:>6}{peak:>10.0f}",
    )
    record_json(
        f"t4_reachability[{design}-{engine}]",
        design=design,
        engine=engine,
        status=result.status.value,
        wall_seconds=wall["seconds"],
        iterations=result.iterations,
        peak_representation=peak,
        manager_nodes=(
            result.stats.get("manager_nodes")
            if "manager_nodes" in result.stats
            else None
        ),
        cache_hit_rate=(
            result.stats.get("bdd_cache_hit_rate")
            if "bdd_cache_hit_rate" in result.stats
            else None
        ),
    )
