"""Experiment T13 — portfolio verification over a mixed workload.

The paper's evaluation shows no single engine dominating; the portfolio
races them and memoizes verdicts by structural hash.  This benchmark
replays a mixed batch (safe and buggy designs, with structural
duplicates) through ``check_many`` twice against one shared cache and
records the winner distribution and the cache hit-rate of the warm pass.
"""

import pytest

from repro.circuits import generators as G
from repro.mc.result import Status
from repro.portfolio import ResultCache, check_many
from repro.util.stats import StatsBag

WORKLOADS = {
    "mixed_small": [
        (lambda: G.mod_counter(4, 12), Status.PROVED),
        (lambda: G.mod_counter(4, 12, safe=False), Status.FAILED),
        (lambda: G.ring_counter(5), Status.PROVED),
        (lambda: G.arbiter(3), Status.PROVED),
        (lambda: G.fifo_level(3, safe=False), Status.FAILED),
        (lambda: G.bug_at_depth(8), Status.FAILED),
        (lambda: G.mod_counter(4, 12), Status.PROVED),      # duplicate
        (lambda: G.ring_counter(5), Status.PROVED),         # duplicate
    ],
}

POLICIES = ["race_all", "sequential_fallback", "predict"]


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("policy", POLICIES)
def test_t13_portfolio_batch(benchmark, record_row, workload, policy):
    designs = WORKLOADS[workload]
    cache = ResultCache()

    def run():
        stats = StatsBag()
        results = check_many(
            [build() for build, _ in designs],
            policy=policy,
            budget=20.0,
            cache=cache,
            stats=stats,
        )
        return results, stats

    # Cold pass fills the cache inside the timed region; the warm pass
    # below measures the memoization payoff.
    (results, cold_stats) = benchmark.pedantic(run, rounds=1, iterations=1)
    for (build, expected), result in zip(designs, results):
        assert result.status is expected, f"{policy}: wrong verdict"

    warm_stats = StatsBag()
    warm = check_many(
        [build() for build, _ in designs],
        policy=policy,
        budget=20.0,
        cache=cache,
        stats=warm_stats,
    )
    assert all(
        result.status is expected
        for (_, expected), result in zip(designs, warm)
    )
    # The batch contains duplicates: the cold pass must already hit, and
    # the warm pass must be served from cache entirely.
    assert cold_stats.get("served_from_cache") >= 2
    assert warm_stats.get("served_from_cache") == len(designs)

    winners = {
        key[len("winner_"):]: int(value)
        for key, value in cold_stats
        if key.startswith("winner_")
    }
    assert sum(winners.values()) == len(designs)
    benchmark.extra_info.update(
        {
            "policy": policy,
            "winners": winners,
            "cold_cache_hits": cold_stats.get("served_from_cache"),
            "warm_cache_hits": warm_stats.get("served_from_cache"),
            "max_engine_seconds": cold_stats.get("max_engine_seconds"),
        }
    )
    winner_text = ",".join(
        f"{name}x{count}" for name, count in sorted(winners.items())
    )
    record_row(
        "T13 portfolio over a mixed workload",
        f"{'workload':<14}{'policy':<22}{'cold_hits':>10}{'warm_hits':>10}"
        f"  winners",
        f"{workload:<14}{policy:<22}"
        f"{cold_stats.get('served_from_cache'):>10.0f}"
        f"{warm_stats.get('served_from_cache'):>10.0f}  {winner_text}",
    )
