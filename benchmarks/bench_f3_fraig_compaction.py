"""Experiment F3 (figure) — FRAIG compaction of traversal state sets.

The traversal routine's manager is append-only: even when the live state
set stays small, superseded logic accumulates.  This bench snapshots the
reached-set representation of a backward traversal at each iteration and
compares three per-snapshot numbers:

* the live cone size as the traversal produced it;
* the size after a FRAIG round with the CNF back end;
* the size after a FRAIG round with the circuit-SAT back end.

Shape claim: functional reduction finds extra merges the interleaved
quantification pipeline missed (it only merges within one cofactor pair
at a time), so the FRAIG series sits at or below the live series, with
both engines landing on the same counts.
"""

import pytest

from repro.aig.ops import or_
from repro.circuits import generators as G
from repro.core.images import ImageComputer
from repro.sweep.fraig import fraig

DESIGNS = {
    "mod_counter_5_24": lambda: G.mod_counter(5, 24, safe=False),
    "arbiter_4": lambda: G.arbiter(4),
}

STEPS = 5


@pytest.mark.parametrize("design", list(DESIGNS))
def test_f3_fraig_series(benchmark, record_row, design):
    def run():
        netlist = DESIGNS[design]()
        aig = netlist.aig
        images = ImageComputer(netlist)
        reached = netlist.property_edge ^ 1
        live_series, cnf_series, circuit_series = [], [], []
        frontier = reached
        for _ in range(STEPS):
            frontier = images.preimage(frontier).edge
            reached = or_(aig, reached, frontier)
            live_series.append(aig.cone_and_count(reached))
            cnf_series.append(fraig(aig, [reached], engine="cnf").size)
            circuit_series.append(
                fraig(aig, [reached], engine="circuit").size
            )
        return live_series, cnf_series, circuit_series

    live, cnf, circuit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cnf == circuit, "both FRAIG engines must agree on sizes"
    assert all(f <= l for f, l in zip(cnf, live))
    benchmark.extra_info.update(
        {
            "design": design,
            "live_series": live,
            "fraig_series": cnf,
        }
    )
    record_row(
        "F3 FRAIG compaction of reached sets (AND nodes)",
        f"{'design':<20}{'series':<9}values",
        f"{design:<20}{'live':<9}{live}\n"
        f"{design:<20}{'fraig':<9}{cnf}",
    )
