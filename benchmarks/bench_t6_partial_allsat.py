"""Experiment T6 — partial quantification + all-solutions SAT pre-image.

Section 4's combination: circuit quantification "dramatically decreases
the amount of decision (input) variables to be processed by SAT based
pre-image".  Measured: decision variables and enumerated cofactor cubes of
the all-SAT engine, with and without the partial-quantification
preprocessing.
"""

import pytest

from repro.aig.graph import edge_not
from repro.aig.ops import support
from repro.circuits import generators as G
from repro.core.partial import PartialQuantifier
from repro.core.quantify import QuantifyOptions
from repro.core.substitution import preimage_by_substitution
from repro.mc.preimage_sat import allsat_quantify

DESIGNS = {
    "arbiter_5": lambda: G.arbiter(5),
    "arbiter_6": lambda: G.arbiter(6),
    "fifo_level_4": lambda: G.fifo_level(4),
}


@pytest.mark.parametrize("design", list(DESIGNS))
@pytest.mark.parametrize("preprocess", ["none", "partial_quantification"])
def test_t6_partial_allsat(benchmark, record_row, design, preprocess):
    def run():
        net = DESIGNS[design]()
        aig = net.aig
        bad = edge_not(net.property_edge)
        composed = preimage_by_substitution(aig, bad, net.next_functions())
        inputs = [
            node for node in net.input_nodes
            if node in support(aig, composed)
        ]
        if preprocess == "none":
            result, stats = allsat_quantify(aig, composed, inputs)
            return stats
        quantifier = PartialQuantifier(
            aig,
            options=QuantifyOptions.preset("full"),
            growth_factor=1.5,
        )
        outcome = quantifier.quantify(composed, inputs)
        result, stats = allsat_quantify(aig, outcome.edge, outcome.aborted)
        stats.set("circuit_quantified", len(outcome.quantified))
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "design": design,
            "preprocess": preprocess,
            "decision_vars": stats.get("decision_vars"),
            "cubes": stats.get("cubes"),
            "circuit_quantified": stats.get("circuit_quantified", 0),
        }
    )
    record_row(
        "T6 partial quantification + all-SAT",
        f"{'design':<14}{'preprocess':<24}{'decision_vars':>14}"
        f"{'cubes':>7}{'circ_quant':>11}",
        f"{design:<14}{preprocess:<24}{stats.get('decision_vars'):>14.0f}"
        f"{stats.get('cubes'):>7.0f}"
        f"{stats.get('circuit_quantified', 0):>11.0f}",
    )
