"""Experiment T11 — forward vs. backward AIG traversal.

Section 3 argues for backward traversal because pre-image gets the
in-lining shortcut (next-state variables never need a quantifier), while
post-image must build the relational product and quantify current-state
*and* input variables.  This bench runs both engines on the same designs
and reports iterations, peak frontier sizes and the number of variables
each traversal pushed through the quantification engine.

Shape claim: both engines agree on every verdict; the forward engine
quantifies roughly (latches + inputs) variables per step against the
backward engine's (inputs) only, and its peak representation sizes are
correspondingly larger.
"""

import pytest

from repro.circuits import generators as G
from repro.circuits.library import handshake

DESIGNS = {
    "mod_counter_4_12": lambda: G.mod_counter(4, 12),
    "arbiter_3": lambda: G.arbiter(3),
    "handshake": lambda: handshake(True),
    "mod_counter_bug": lambda: G.mod_counter(4, 12, safe=False),
}

ENGINES = ["reach_aig", "reach_aig_fwd"]


@pytest.mark.parametrize("design", list(DESIGNS))
@pytest.mark.parametrize("engine", ENGINES)
def test_t11_forward_vs_backward(
    benchmark, record_row, session, design, engine
):
    def run():
        return session.verify(DESIGNS[design](), engine=engine)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    vars_quantified = result.stats.get("vars_quantified", 0)
    peak = result.stats.get("peak_frontier_size", 0)
    benchmark.extra_info.update(
        {
            "design": design,
            "engine": engine,
            "status": result.status.value,
            "iterations": result.iterations,
            "vars_quantified": vars_quantified,
            "peak_frontier": peak,
        }
    )
    record_row(
        "T11 forward vs backward traversal",
        f"{'design':<18}{'engine':<15}{'status':<9}{'iters':>6}"
        f"{'vars_quant':>11}{'peak':>7}",
        f"{design:<18}{engine:<15}{result.status.value:<9}"
        f"{result.iterations:>6}{vars_quantified:>11.0f}{peak:>7.0f}",
    )
