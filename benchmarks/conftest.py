"""Benchmark-harness helpers.

Each ``bench_*`` module regenerates one experiment of EXPERIMENTS.md.
Besides pytest-benchmark's timing columns, every benchmark records its
experiment-specific metrics (sizes, check counts, iteration counts) in
``benchmark.extra_info`` and appends a human-readable row to
``benchmarks/results.txt`` so the tables survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS = pathlib.Path(__file__).parent / "results.txt"
_seen_headers: set[str] = set()


@pytest.fixture
def record_row():
    """Append one formatted row to the shared results file."""

    def _record(experiment: str, header: str, row: str) -> None:
        with _RESULTS.open("a") as handle:
            if experiment not in _seen_headers:
                _seen_headers.add(experiment)
                handle.write(f"\n== {experiment} ==\n{header}\n")
            handle.write(row + "\n")

    return _record


def pytest_sessionstart(session):
    # Start each benchmark session with a fresh results file.
    if _RESULTS.exists():
        _RESULTS.unlink()
