"""Benchmark-harness helpers.

Each ``bench_*`` module regenerates one experiment of EXPERIMENTS.md.
Besides pytest-benchmark's timing columns, every benchmark records its
experiment-specific metrics (sizes, check counts, iteration counts) in
``benchmark.extra_info`` and appends a human-readable row to
``benchmarks/results.txt`` so the tables survive the run.

Benchmarks that track the performance trajectory across PRs additionally
record machine-readable entries through the ``record_json`` fixture;
those are written to ``benchmarks/BENCH_BDD.json`` at session end
(per-benchmark wall times, node counts, cache hit rates).
"""

from __future__ import annotations

import json
import pathlib

import pytest

_RESULTS = pathlib.Path(__file__).parent / "results.txt"
_BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_BDD.json"
_seen_headers: set[str] = set()
_json_records: list[dict] = []


@pytest.fixture
def session():
    """A fresh :class:`repro.api.Session` per benchmark.

    Engine runs go through the typed task API; the session is
    function-scoped so its structural-hash result cache is cold for
    every benchmark (a warm cache would time the cache, not the engine).
    """
    from repro.api import Session

    return Session()


@pytest.fixture
def record_row():
    """Append one formatted row to the shared results file."""

    def _record(experiment: str, header: str, row: str) -> None:
        with _RESULTS.open("a") as handle:
            if experiment not in _seen_headers:
                _seen_headers.add(experiment)
                handle.write(f"\n== {experiment} ==\n{header}\n")
            handle.write(row + "\n")

    return _record


@pytest.fixture
def record_json():
    """Queue one machine-readable benchmark record for BENCH_BDD.json.

    Call as ``record_json("bench_name", wall_seconds=..., **metrics)``;
    values must be JSON-serializable scalars.
    """

    def _record(benchmark_id: str, **fields) -> None:
        _json_records.append({"benchmark": benchmark_id, **fields})

    return _record


def pytest_sessionstart(session):
    # Start each benchmark session with a fresh results file.  The JSON
    # trajectory is NOT deleted here: only sessions that actually record
    # entries rewrite it, so a non-recording benchmark run cannot wipe it.
    if _RESULTS.exists():
        _RESULTS.unlink()
    _json_records.clear()


def pytest_sessionfinish(session, exitstatus):
    if _json_records:
        _BENCH_JSON.write_text(
            json.dumps(_json_records, indent=2, sort_keys=True) + "\n"
        )
