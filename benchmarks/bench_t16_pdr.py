"""Experiment T16 — PDR vs. interpolation vs. BMC on deep PROVED and
FAILED families.

The workload PDR exists for: state spaces whose proofs need neither a
deep unrolling (interpolation's cost) nor a depth sweep (BMC's), just a
handful of single-step frame queries.  Two sides:

* **PROVED** — wide counters and shift structures; PDR and itp must
  both prove them (PDR with a certified inductive invariant), BMC is
  structurally stuck at UNKNOWN;
* **FAILED** — deep planted bugs; all three engines find them and the
  traces replay.

Wall times, verdicts, frame/iteration counts and invariant sizes land
in ``benchmarks/BENCH_BDD.json`` via ``record_json``.  Set
``BENCH_TINY=1`` (CI bench-smoke) to shrink the instances.

The observability overhead check (``test_t16_obs_overhead``) runs each
PROVED family once untraced and once with :mod:`repro.obs` tracing on,
asserts the scalar stats are identical (the probes must never perturb
the search), writes the Chrome trace to ``benchmarks/traces/`` (uploaded
as a CI artifact, loadable in chrome://tracing / Perfetto) and records
``obs_*`` overhead numbers into the trajectory.
"""

import os
import pathlib
import time

import pytest

TRACE_DIR = pathlib.Path(__file__).parent / "traces"

from repro.circuits import generators as G
from repro.itp import ItpOptions
from repro.mc import verify
from repro.mc.result import Status
from repro.pdr import PdrOptions, check_certificate

if os.environ.get("BENCH_TINY"):
    PROVED_FAMILIES = {
        "mod_counter_16": lambda: G.mod_counter(16),
        "mod_counter_24": lambda: G.mod_counter(24),
        "shift_register_16": lambda: G.shift_register(16),
    }
    FAILED_FAMILIES = {
        "bug_at_depth_8": lambda: G.bug_at_depth(8),
        "updown_6_buggy": lambda: G.up_down_counter(6, safe=False),
    }
    MAX_DEPTH = 16
else:
    PROVED_FAMILIES = {
        "mod_counter_64": lambda: G.mod_counter(64),
        "mod_counter_128": lambda: G.mod_counter(128),
        "shift_register_32": lambda: G.shift_register(32),
        "updown_16": lambda: G.up_down_counter(16),
    }
    FAILED_FAMILIES = {
        "bug_at_depth_12": lambda: G.bug_at_depth(12),
        "mod_counter_5_28_buggy": lambda: G.mod_counter(5, 28, safe=False),
        "updown_8_buggy": lambda: G.up_down_counter(8, safe=False),
    }
    MAX_DEPTH = 32

ENGINES = ("pdr", "itp", "bmc")


def _run(engine, netlist):
    if engine == "pdr":
        options = {"options": PdrOptions(max_frames=MAX_DEPTH)}
    elif engine == "itp":
        options = {"options": ItpOptions(max_depth=MAX_DEPTH)}
    else:
        options = {"max_depth": MAX_DEPTH}
    start = time.perf_counter()
    result = verify(netlist, method=engine, **options)
    return time.perf_counter() - start, result


def _record(design, kind, timings, results, benchmark, record_json,
            record_row):
    pdr_result = results["pdr"]
    benchmark.extra_info.update(
        {
            "design": design,
            "kind": kind,
            "pdr_frames": pdr_result.iterations,
            "pdr_sat_calls": pdr_result.stats.get("sat_calls"),
            "invariant_clauses": pdr_result.stats.get(
                "invariant_clauses"
            ),
        }
    )
    record_json(
        "t16_pdr",
        design=design,
        kind=kind,
        pdr_seconds=timings["pdr"],
        itp_seconds=timings["itp"],
        bmc_seconds=timings["bmc"],
        pdr_frames=pdr_result.iterations,
        pdr_sat_calls=pdr_result.stats.get("sat_calls"),
        pdr_lemmas=pdr_result.stats.get("pdr_lemmas_active"),
        invariant_clauses=pdr_result.stats.get("invariant_clauses"),
        pdr_verdict=pdr_result.status.value,
        itp_verdict=results["itp"].status.value,
        bmc_verdict=results["bmc"].status.value,
    )
    record_row(
        "T16 PDR vs interpolation vs BMC",
        f"{'design':<24}{'kind':<8}{'pdr':>9}{'itp':>9}{'bmc':>9}"
        f"{'frames':>8}{'inv':>6}",
        f"{design:<24}{kind:<8}"
        f"{timings['pdr'] * 1000:>7.0f}ms"
        f"{timings['itp'] * 1000:>7.0f}ms"
        f"{timings['bmc'] * 1000:>7.0f}ms"
        f"{pdr_result.iterations:>8d}"
        f"{pdr_result.stats.get('invariant_clauses', 0):>6.0f}",
    )


@pytest.mark.parametrize("design", list(PROVED_FAMILIES))
def test_t16_pdr_proves_where_bmc_cannot(
    benchmark, record_row, record_json, design
):
    build = PROVED_FAMILIES[design]
    timings, results = {}, {}
    for engine in ENGINES:
        timings[engine], results[engine] = _run(engine, build())

    # The deep-PROVED contract: PDR proves with a certificate that
    # re-checks on a fresh solver, interpolation agrees, BMC never can.
    pdr_result = results["pdr"]
    assert pdr_result.status is Status.PROVED
    assert pdr_result.certificate is not None
    check_certificate(build(), pdr_result.certificate)
    assert results["itp"].status is Status.PROVED
    assert results["bmc"].status is Status.UNKNOWN

    benchmark.pedantic(
        lambda: verify(
            build(), method="pdr",
            options=PdrOptions(max_frames=MAX_DEPTH),
        ),
        rounds=1, iterations=1,
    )
    _record(design, "proved", timings, results, benchmark, record_json,
            record_row)


@pytest.mark.parametrize("design", list(FAILED_FAMILIES))
def test_t16_pdr_refutes_with_replayable_traces(
    benchmark, record_row, record_json, design
):
    build = FAILED_FAMILIES[design]
    timings, results = {}, {}
    for engine in ENGINES:
        timings[engine], results[engine] = _run(engine, build())

    # The FAILED contract: all three engines find the bug; PDR's trace
    # replays and is never shorter than BMC's breadth-first minimum.
    for engine in ENGINES:
        assert results[engine].status is Status.FAILED, engine
    assert results["pdr"].trace.validate(build())
    assert results["pdr"].trace.depth >= results["bmc"].trace.depth

    benchmark.pedantic(
        lambda: verify(
            build(), method="pdr",
            options=PdrOptions(max_frames=MAX_DEPTH),
        ),
        rounds=1, iterations=1,
    )
    _record(design, "failed", timings, results, benchmark, record_json,
            record_row)


@pytest.mark.parametrize("design", list(PROVED_FAMILIES))
def test_t16_obs_overhead(benchmark, record_row, record_json, design):
    build = PROVED_FAMILIES[design]
    options = PdrOptions(max_frames=MAX_DEPTH)

    start = time.perf_counter()
    plain = verify(build(), method="pdr", options=options)
    plain_seconds = time.perf_counter() - start

    TRACE_DIR.mkdir(exist_ok=True)
    trace_path = TRACE_DIR / f"t16_{design}.json"
    start = time.perf_counter()
    traced = verify(
        build(), method="pdr", options=options, trace=str(trace_path)
    )
    traced_seconds = time.perf_counter() - start

    # The zero-perturbation contract: probes only read kernel counters,
    # so the traced run's search trajectory — every scalar stat — must
    # match the untraced run bit for bit.
    assert traced.status is plain.status
    assert traced.stats.as_dict() == plain.stats.as_dict()
    assert trace_path.exists()

    # Same contract on the BDD side: bdd_tick reads the manager's scalar
    # hit/miss counters and cache lens directly (no summary dict per
    # tick), and the traced traversal must report identical stats —
    # node counts, cache hits, iteration gauges — to the untraced one.
    plain_bdd = verify(build(), method="reach_bdd", max_depth=MAX_DEPTH)
    traced_bdd = verify(
        build(), method="reach_bdd", max_depth=MAX_DEPTH, trace=True
    )
    assert traced_bdd.status is plain_bdd.status
    assert traced_bdd.stats.as_dict() == plain_bdd.stats.as_dict()
    assert any(
        record.name.startswith("bdd.")
        for record in traced_bdd.tracer.counters
    )

    overhead = (
        traced_seconds / plain_seconds if plain_seconds > 0 else 1.0
    )
    record_json(
        "t16_obs",
        design=design,
        obs_plain_seconds=plain_seconds,
        obs_traced_seconds=traced_seconds,
        obs_overhead_ratio=overhead,
        obs_trace_spans=len(traced.tracer.spans),
        obs_trace_samples=len(traced.tracer.counters),
        obs_trace_file=trace_path.name,
    )
    record_row(
        "T16 observability overhead",
        f"{'design':<24}{'plain':>9}{'traced':>9}{'ratio':>7}"
        f"{'spans':>7}{'samples':>9}",
        f"{design:<24}"
        f"{plain_seconds * 1000:>7.0f}ms"
        f"{traced_seconds * 1000:>7.0f}ms"
        f"{overhead:>6.2f}x"
        f"{len(traced.tracer.spans):>7d}"
        f"{len(traced.tracer.counters):>9d}",
    )
    benchmark.pedantic(
        lambda: verify(build(), method="pdr", options=options),
        rounds=1, iterations=1,
    )
