"""Experiment F2 (figure) — size vs. number of variables quantified.

The size-explosion containment curve: quantify 1..k variables out of one
circuit and record the result size after each variable, for bare Shannon
expansion vs. the full pipeline.  Also records the abort behaviour of the
partial quantifier under a tight growth budget (its answer to the curve's
worst segments).
"""

import pytest

from repro.circuits.combinational import adder_sum_parity, random_logic
from repro.core import PartialQuantifier, QuantifyOptions, quantify_exists

WORKLOADS = {
    "random_12x120": (lambda: random_logic(12, 120, seed=5), 6),
    "adder_parity8": (lambda: adder_sum_parity(8), 6),
}


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("preset", ["shannon", "full"])
def test_f2_size_curve(benchmark, record_row, workload, preset):
    build, max_vars = WORKLOADS[workload]

    def run():
        aig, inputs, root = build()
        options = QuantifyOptions.preset(preset)
        sizes = []
        current = root
        for edge in inputs[:max_vars]:
            outcome = quantify_exists(aig, current, [edge >> 1], options)
            current = outcome.edge
            sizes.append(aig.cone_and_count(current))
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"workload": workload, "preset": preset, "size_curve": sizes}
    )
    record_row(
        "F2 size vs #vars quantified",
        f"{'workload':<16}{'preset':<9}size after each variable",
        f"{workload:<16}{preset:<9}{sizes}",
    )


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_f2_partial_abort_rate(benchmark, record_row, workload):
    build, max_vars = WORKLOADS[workload]

    def run():
        aig, inputs, root = build()
        quantifier = PartialQuantifier(
            aig,
            options=QuantifyOptions.preset("full"),
            growth_factor=1.2,
        )
        return quantifier.quantify(
            root, [e >> 1 for e in inputs[:max_vars]]
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    total = len(outcome.quantified) + len(outcome.aborted)
    benchmark.extra_info.update(
        {
            "workload": workload,
            "accepted": len(outcome.quantified),
            "aborted": len(outcome.aborted),
        }
    )
    record_row(
        "F2 partial-quantification abort rate (growth budget 1.2x)",
        f"{'workload':<16}{'accepted':>9}{'aborted':>8}",
        f"{workload:<16}{len(outcome.quantified):>9}"
        f"{len(outcome.aborted):>8}",
    )
