"""Experiment F1 (figure) — state-set size per traversal iteration.

Plots (as a data series) the frontier representation size at every
backward step, comparing the full merge+optimize pipeline against bare
Shannon expansion, and against the BDD engine's node counts.  Shape claim:
the full pipeline's curve stays flat where Shannon's climbs.
"""

import pytest

from repro.circuits import generators as G
from repro.core.quantify import QuantifyOptions
from repro.mc.reach_aig import BackwardReachability, ReachOptions
from repro.mc.reach_bdd import bdd_backward_reachability

DESIGNS = {
    "mod_counter_bug_5_24": lambda: G.mod_counter(5, 24, safe=False),
    "fifo_level_4": lambda: G.fifo_level(4),
}


def frontier_series(stats) -> list[int]:
    series = []
    index = 1
    while f"frontier_size_{index}" in stats:
        series.append(int(stats.get(f"frontier_size_{index}")))
        index += 1
    return series


@pytest.mark.parametrize("design", list(DESIGNS))
@pytest.mark.parametrize("preset", ["shannon", "full"])
def test_f1_aig_series(benchmark, record_row, design, preset):
    def run():
        return BackwardReachability(
            DESIGNS[design](),
            ReachOptions(quantify=QuantifyOptions.preset(preset)),
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    series = frontier_series(result.stats)
    benchmark.extra_info.update(
        {
            "design": design,
            "preset": preset,
            "series": series,
            "peak": max(series) if series else 0,
        }
    )
    record_row(
        "F1 state-set growth per iteration (AND nodes)",
        f"{'design':<22}{'preset':<9}series",
        f"{design:<22}{preset:<9}{series}",
    )


@pytest.mark.parametrize("design", list(DESIGNS))
def test_f1_bdd_reference(benchmark, record_row, design):
    def run():
        return bdd_backward_reachability(DESIGNS[design]())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "design": design,
            "engine": "reach_bdd",
            "peak_bdd": result.stats.get("peak_frontier_bdd"),
        }
    )
    record_row(
        "F1 state-set growth per iteration (AND nodes)",
        "",
        f"{design:<22}{'bdd':<9}peak_bdd_nodes="
        f"{result.stats.get('peak_frontier_bdd'):.0f}",
    )
