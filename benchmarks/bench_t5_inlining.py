"""Experiment T5 — pre-image by in-lining vs. relational quantification.

Section 3's rule replaces the quantification of every next-state variable
by one functional composition.  We compute the same pre-image both ways
and compare circuit sizes and the number of variables actually quantified.
Shape claim: in-lining quantifies |inputs| variables; the relational route
quantifies |inputs| + |latches| and pays for it.
"""

import pytest

from repro.aig.graph import edge_not
from repro.circuits import generators as G
from repro.core.quantify import QuantifyOptions, quantify_exists
from repro.core.substitution import (
    preimage_by_substitution,
    preimage_relational,
)

DESIGNS = {
    "mod_counter_5_20": lambda: G.mod_counter(5, 20),
    "arbiter_4": lambda: G.arbiter(4),
    "fifo_level_3": lambda: G.fifo_level(3),
}


@pytest.mark.parametrize("design", list(DESIGNS))
@pytest.mark.parametrize("route", ["inlining", "relational"])
def test_t5_preimage_routes(benchmark, record_row, design, route):
    def run():
        net = DESIGNS[design]()
        aig = net.aig
        bad = edge_not(net.property_edge)
        options = QuantifyOptions.preset("full")
        if route == "inlining":
            composed = preimage_by_substitution(
                aig, bad, net.next_functions()
            )
            outcome = quantify_exists(
                aig, composed, net.input_nodes, options
            )
            quantified = len(outcome.quantified)
        else:
            placeholders = {
                node: aig.add_input(f"ph{node}") >> 1
                for node in net.latch_nodes
            }
            relation = preimage_relational(
                aig, bad, net.next_functions(), placeholders
            )
            outcome = quantify_exists(
                aig,
                relation,
                list(placeholders.values()) + net.input_nodes,
                options,
            )
            quantified = len(outcome.quantified)
        return aig, outcome, quantified

    aig, outcome, quantified = benchmark.pedantic(run, rounds=1, iterations=1)
    size = aig.cone_and_count(outcome.edge)
    benchmark.extra_info.update(
        {
            "design": design,
            "route": route,
            "result_size": size,
            "vars_quantified": quantified,
            "peak_size": outcome.stats.get("peak_size", 0),
        }
    )
    record_row(
        "T5 pre-image: in-lining vs relational",
        f"{'design':<18}{'route':<12}{'vars_quant':>11}{'peak':>7}"
        f"{'result':>8}",
        f"{design:<18}{route:<12}{quantified:>11}"
        f"{outcome.stats.get('peak_size', 0):>7.0f}{size:>8}",
    )
