"""Experiment T10 — the ATPG view of the merge/optimize phase.

The paper: the merge procedure "is not far from testing stuck-at-faults on
comparison gates ... we are more interested in finding redundancies, than
good test patterns for faults."  This bench quantifies that connection:

* random-pattern fault coverage and the faults only deterministic engines
  resolve (the analogue of signature filtering before SAT checks);
* how many of the surviving faults are *redundant*, and how much circuit
  shrinks when they are tied off — redundancy removal as an optimization
  engine on quantification-style disjunctions.

Shape claim: on cofactor disjunctions (the quantification workload)
redundancy removal finds ties precisely where the don't-care optimizer
simplifies, so sizes after both transformations land close together.
"""

import pytest

from repro.aig.analysis import cone_size
from repro.aig.ops import cofactor, or_
from repro.atpg.fsim import fault_coverage
from repro.atpg.redundancy import remove_redundancies
from repro.circuits.combinational import (
    adder_sum_parity,
    majority,
    mux_tree,
    random_logic,
)

FAMILIES = {
    "adder_parity6": lambda: adder_sum_parity(6),
    "mux_tree3": lambda: mux_tree(3),
    "majority7": lambda: majority(7),
    "random_8x60": lambda: random_logic(8, 60, seed=21),
}


@pytest.mark.parametrize("family", list(FAMILIES))
def test_t10_redundancy_on_cofactor_disjunction(
    benchmark, record_row, family
):
    def run():
        aig, inputs, root = FAMILIES[family]()
        var = inputs[0] >> 1
        disjunction = or_(
            aig,
            cofactor(aig, root, var, False),
            cofactor(aig, root, var, True),
        )
        before = cone_size(aig, disjunction)
        coverage, simulator = fault_coverage(
            aig, [disjunction], words=4, rounds=2
        )
        (tied,), stats = remove_redundancies(aig, [disjunction])
        after = cone_size(aig, tied)
        return before, after, coverage, len(simulator.remaining), stats

    before, after, coverage, hard_faults, stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ties = stats.get("ties_applied", 0)
    benchmark.extra_info.update(
        {
            "family": family,
            "size_before": before,
            "size_after": after,
            "random_coverage": round(coverage, 3),
            "faults_left_for_sat": hard_faults,
            "redundant_ties": ties,
        }
    )
    record_row(
        "T10 ATPG redundancy removal",
        f"{'family':<15}{'before':>8}{'after':>7}{'coverage':>10}"
        f"{'hard_faults':>12}{'ties':>6}",
        f"{family:<15}{before:>8}{after:>7}{coverage:>10.2f}"
        f"{hard_faults:>12}{ties:>6.0f}",
    )
