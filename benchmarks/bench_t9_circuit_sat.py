"""Experiment T9 — CNF-incremental vs. circuit-SAT merge back ends.

The paper's future-work sentence: "We presently rely on a general SAT
solver, i.e., ZChaff, but we plan to experiment with circuit-SAT in the
future."  This bench runs the same forward sweep over cofactor pairs with
both back ends — the factorized CNF session (SatSweeper) and the
justification-based circuit solver (CircuitSweeper) — and reports check
counts, merge yields and final sizes.

Shape claim: both engines find the same merges (they share the signature
front end); the circuit solver avoids the Tseitin encoding entirely, while
the CNF engine amortizes learning across checks.  Neither should change
the swept function or the final node count.
"""

import pytest

from repro.aig.analysis import cone_size
from repro.aig.ops import cofactor
from repro.circuits.combinational import (
    adder_sum_parity,
    equality_with_constant_slices,
    random_logic,
)
from repro.sweep.circuitsweep import CircuitSweeper
from repro.sweep.satsweep import SatSweeper

FAMILIES = {
    "adder_parity8": lambda: adder_sum_parity(8),
    "slices_4x3": lambda: equality_with_constant_slices(4, 3),
    "random_10x120": lambda: random_logic(10, 120, seed=9),
}

ENGINES = ["cnf", "circuit"]


@pytest.mark.parametrize("family", list(FAMILIES))
@pytest.mark.parametrize("engine", ENGINES)
def test_t9_circuit_sat_backend(benchmark, record_row, family, engine):
    def run():
        aig, inputs, root = FAMILIES[family]()
        var = inputs[0] >> 1
        cof0 = cofactor(aig, root, var, False)
        cof1 = cofactor(aig, root, var, True)
        if engine == "cnf":
            sweeper = SatSweeper(aig, seed=17)
        else:
            sweeper = CircuitSweeper(aig, seed=17)
        (new0, new1), _ = sweeper.sweep([cof0, cof1])
        size = cone_size(aig, aig.and_(new0, new1))
        return size, sweeper.stats.as_dict()

    size, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    checks = stats.get("sat_checks", 0)
    merges = stats.get("sat_merges", 0) + stats.get("constant_merges", 0)
    benchmark.extra_info.update(
        {
            "family": family,
            "engine": engine,
            "final_size": size,
            "sat_checks": checks,
            "merges": merges,
            "unknown": stats.get("unknown_checks", 0),
        }
    )
    record_row(
        "T9 circuit-SAT back end",
        f"{'family':<16}{'engine':<9}{'final_size':>11}"
        f"{'checks':>8}{'merges':>8}{'unknown':>9}",
        f"{family:<16}{engine:<9}{size:>11}{checks:>8.0f}"
        f"{merges:>8.0f}{stats.get('unknown_checks', 0):>9.0f}",
    )
