#!/usr/bin/env python3
"""Sequential equivalence checking via product machines.

The paper adapts "equivalence checking and logic synthesis techniques" to
state-set manipulation; this example closes the loop and uses the
state-set engines *for* equivalence checking: two different
implementations of the same behaviour are composed into a product machine
whose invariant says their outputs agree, and the invariant is proved by
unbounded model checking.

Scenario: a 4-bit binary counter versus a counter whose *registers hold
Gray code* — every step decodes to binary, increments, and re-encodes.
Same counting behaviour, completely different state encodings —
structural comparison is hopeless, sequential analysis is required.

Run:  python examples/sequential_equivalence.py
"""

from repro.api import Session
from repro.circuits.generators import mod_counter
from repro.circuits.netlist import Netlist
from repro.circuits.product import sequential_miter


def binary_counter(width: int) -> Netlist:
    """A plain binary counter exposing its count bits."""
    netlist = mod_counter(width, 1 << width)
    for index, node in enumerate(netlist.latch_nodes):
        netlist.set_output(f"bit{index}", 2 * node)
    return netlist


def gray_encoded_counter(width: int) -> Netlist:
    """A counter whose state registers hold the count in Gray code.

    Next state = encode(decode(state) + 1); outputs are the decoded
    binary bits, so behaviourally this is the same counter as
    :func:`binary_counter` under a different state encoding.
    """
    from repro.aig.graph import TRUE
    from repro.aig.ops import xor

    netlist = Netlist(f"gray_encoded_counter_{width}")
    aig = netlist.aig
    gray = netlist.add_latches(width, prefix="g")
    # Gray-to-binary decoder: binary[k] = XOR of gray[k..width-1].
    binary = []
    acc = None
    for bit in reversed(gray):
        acc = bit if acc is None else xor(aig, acc, bit)
        binary.append(acc)
    binary.reverse()
    # Ripple increment of the decoded value.
    incremented = []
    carry = TRUE
    for bit in binary:
        incremented.append(xor(aig, bit, carry))
        carry = aig.and_(bit, carry)
    # Binary-to-Gray re-encoder: gray[k] = b[k] XOR b[k+1].
    for k, latch in enumerate(gray):
        upper = incremented[k + 1] if k + 1 < width else None
        encoded = (
            xor(aig, incremented[k], upper)
            if upper is not None
            else incremented[k]
        )
        netlist.set_next(latch, encoded)
    for index, edge in enumerate(binary):
        netlist.set_output(f"bit{index}", edge)
    netlist.validate()
    return netlist


def main() -> None:
    width = 4
    left = binary_counter(width)
    right = gray_encoded_counter(width)
    print(f"left:  {left.name} ({left.num_latches} latches, "
          f"{left.aig.num_ands} ANDs)")
    print(f"right: {right.name} ({right.num_latches} latches, "
          f"{right.aig.num_ands} ANDs)")

    miter = sequential_miter(left, right, name="binary_vs_gray")
    print(f"miter: {miter.num_latches} latches, "
          f"{miter.aig.num_ands} ANDs, property = all bit outputs agree")

    session = Session()
    for method in ("reach_aig", "reach_bdd"):
        result = session.verify(miter, engine=method)
        print(f"  {method}: {result.status.value} "
              f"in {result.iterations} iterations")

    # A broken decoder (one output wired wrong) must be caught with a trace.
    broken = gray_encoded_counter(width)
    broken.set_output("bit2", broken.outputs["bit3"])
    miter = sequential_miter(binary_counter(width), broken)
    result = session.verify(miter, engine="reach_aig")
    print(f"\nbroken decoder: {result.status.value} "
          f"(diverges after {result.trace.depth} steps)")
    assert result.trace.validate(
        sequential_miter(binary_counter(width), broken)
    )


if __name__ == "__main__":
    main()
