#!/usr/bin/env python3
"""Quickstart: verify an invariant with circuit-based unbounded model checking.

This walks the full happy path of the library in ~40 lines:

1. build a sequential circuit (a modulo-10 counter with a safety property),
2. run the paper's engine — backward reachability with AIG state sets and
   circuit-based quantification — through the typed Session API,
3. inspect the verdict and statistics,
4. break the design and watch the engine produce a concrete,
   replay-validated counterexample trace.

Run:  python examples/quickstart.py
"""

from repro.api import Session, VerificationTask
from repro.circuits import generators


def main() -> None:
    # -- 1. a safe design: a counter that counts 0..9 and wraps ----------
    counter = generators.mod_counter(width=4, modulus=10, safe=True)
    print(f"design: {counter.name}  "
          f"({counter.num_latches} latches, {counter.aig.num_ands} AND gates)")

    # -- 2. the paper's engine ------------------------------------------
    session = Session()
    result = session.run(VerificationTask(counter, engine="reach_aig"))
    print(f"verdict: {result.status.value} "
          f"after {result.iterations} pre-image iterations")
    print(f"peak state-set size: "
          f"{result.stats.get('peak_frontier_size'):.0f} AND nodes")

    # -- 3. the same design with a property that is actually violated ----
    buggy = generators.mod_counter(width=4, modulus=10, safe=False)
    result = session.run(VerificationTask(buggy, engine="reach_aig"))
    print(f"\nbuggy variant: {result.status.value} "
          f"(counterexample of depth {result.trace.depth})")

    # -- 4. replay the counterexample -----------------------------------
    print("counterexample states (counter values):")
    for step, state in enumerate(result.trace.states):
        value = sum(
            int(state[node]) << k
            for k, node in enumerate(buggy.latch_nodes)
        )
        marker = "  <- property violated" if step == result.trace.depth else ""
        print(f"  step {step:2d}: counter = {value}{marker}")
    assert result.trace.validate(buggy), "traces are always replay-validated"


if __name__ == "__main__":
    main()
