#!/usr/bin/env python3
"""Circuit-based quantifier elimination, step by step (paper Section 2).

Quantifies input variables out of a comparator circuit under every preset
of the engine, showing how each ingredient — structural hashing, BDD
sweeping, SAT-based merging, don't-care optimization — contains the size
explosion that plain Shannon expansion causes.

Run:  python examples/quantifier_elimination.py
"""

from repro.circuits.combinational import comparator, random_logic
from repro.core import QuantifyOptions, quantify_exists

PRESETS = ("shannon", "hash", "bdd", "sat", "full")


def demonstrate(family_name: str, build, num_quantified: int) -> None:
    print(f"\n== exists-quantifying {num_quantified} variables "
          f"out of {family_name} ==")
    print(f"{'preset':<10} {'result size':>12} {'peak size':>10} "
          f"{'SAT checks':>11}")
    for preset in PRESETS:
        # Fresh circuit per preset so managers do not share hash tables.
        aig, inputs, root = build()
        variables = [edge >> 1 for edge in inputs[:num_quantified]]
        outcome = quantify_exists(
            aig, root, variables, QuantifyOptions.preset(preset)
        )
        print(
            f"{preset:<10} {aig.cone_and_count(outcome.edge):>12} "
            f"{outcome.stats.get('peak_size'):>10.0f} "
            f"{outcome.stats.get('sat_checks', 0):>11.0f}"
        )


def main() -> None:
    demonstrate(
        "an 8-bit comparator (a < b)",
        lambda: comparator(8),
        num_quantified=5,
    )
    demonstrate(
        "random logic (12 inputs, 120 gates)",
        lambda: random_logic(12, 120, seed=7),
        num_quantified=5,
    )
    print(
        "\nAll presets compute the same function (the test suite checks "
        "them against canonical BDDs);\nthey differ only in how hard they "
        "fight the size explosion."
    )


if __name__ == "__main__":
    main()
