#!/usr/bin/env python3
"""Partial quantification feeding an all-solutions SAT pre-image (Section 4).

The paper's answer to size explosion on hostile variables: quantify the
cheap ones with the circuit engine, abort the expensive ones, and hand the
residual decision variables to a SAT enumerator (Ganai et al.'s circuit
cofactoring).  This example measures exactly that hand-off on a pre-image
computation for an arbiter.

Run:  python examples/partial_quantification.py
"""

from repro.aig.graph import edge_not
from repro.aig.ops import support
from repro.circuits import generators
from repro.core import PartialQuantifier, QuantifyOptions
from repro.core.substitution import preimage_by_substitution
from repro.mc.preimage_sat import allsat_quantify


def main() -> None:
    netlist = generators.arbiter(4)
    aig = netlist.aig
    bad = edge_not(netlist.property_edge)
    composed = preimage_by_substitution(aig, bad, netlist.next_functions())
    inputs = [
        node for node in netlist.input_nodes
        if node in support(aig, composed)
    ]
    print(f"pre-image problem: {aig.cone_and_count(composed)} AND nodes, "
          f"{len(inputs)} input variables to eliminate")

    # --- baseline: pure all-SAT enumeration over every input -----------
    pure, pure_stats = allsat_quantify(aig, composed, inputs)
    print(f"\npure all-SAT:      {pure_stats.get('decision_vars'):.0f} "
          f"decision vars, {pure_stats.get('cubes'):.0f} cofactor cubes, "
          f"result {aig.cone_and_count(pure)} ANDs")

    # --- the paper's combination: partial quantification first ---------
    quantifier = PartialQuantifier(
        aig,
        options=QuantifyOptions.preset("full"),
        growth_factor=1.5,
    )
    outcome = quantifier.quantify(composed, inputs)
    print(f"partial circuit quantification: "
          f"{len(outcome.quantified)} accepted, "
          f"{len(outcome.aborted)} aborted "
          f"(result so far {aig.cone_and_count(outcome.edge)} ANDs)")

    combined, combo_stats = allsat_quantify(
        aig, outcome.edge, outcome.aborted
    )
    print(f"all-SAT residual:  {combo_stats.get('decision_vars'):.0f} "
          f"decision vars, {combo_stats.get('cubes'):.0f} cofactor cubes, "
          f"result {aig.cone_and_count(combined)} ANDs")

    # --- both routes compute the same state set ------------------------
    from repro.sweep import prove_edges_equivalent

    verdict, _ = prove_edges_equivalent(aig, pure, combined)
    print(f"\nresults equivalent: {verdict}")
    assert verdict is True


if __name__ == "__main__":
    main()
