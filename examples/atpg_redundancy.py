#!/usr/bin/env python3
"""Stuck-at-fault testing and redundancy removal on AIG cones.

The paper observes that its cofactor-merging procedure "is not far from
testing stuck-at-faults on comparison gates", and that it cares about
*redundancies* more than test patterns.  This example runs that whole
pipeline on a combinational benchmark:

1. enumerate and collapse the stuck-at fault list of a circuit,
2. grade random patterns by bit-parallel fault simulation,
3. finish the survivors with the two deterministic engines (PODEM and
   SAT), proving some faults redundant,
4. tie off the redundant sites — redundancy removal as logic optimization,
5. use the same machinery as an equivalence checker on a comparison gate.

Run:  python examples/atpg_redundancy.py
"""

from repro.aig.analysis import cone_size
from repro.aig.graph import Aig
from repro.aig.ops import cofactor, or_
from repro.atpg import (
    FaultSimulator,
    PodemGenerator,
    SatTestGenerator,
    check_equal_via_atpg,
    remove_redundancies,
)
from repro.circuits.combinational import majority


def main() -> None:
    # -- 1. the quantification workload: a disjunction of cofactors ------
    # exists x . f  ==  f|x=0 OR f|x=1 — the circuit shape the paper's
    # optimization phase works on, and a natural source of redundancy.
    aig, inputs, f = majority(9)
    var = inputs[0] >> 1
    root = or_(
        aig,
        cofactor(aig, f, var, False),
        cofactor(aig, f, var, True),
    )
    simulator = FaultSimulator(aig, [root])
    print(f"circuit: exists x0 . majority(9), "
          f"{cone_size(aig, root)} AND gates")
    print(f"collapsed fault list: {len(simulator.remaining)} faults")

    # -- 2. random-pattern grading ---------------------------------------
    coverage = simulator.run_random(words=1, rounds=1)
    print(f"random-pattern coverage: {coverage:.1%} "
          f"({len(simulator.remaining)} faults survive)")

    # -- 3. deterministic test generation on the survivors ----------------
    podem = PodemGenerator(aig, [root])
    sat = SatTestGenerator(aig, [root])
    redundant = []
    for fault in list(simulator.remaining):
        podem_result = podem.generate(fault)
        testable, _ = sat.generate(fault)
        agreement = podem_result.found == bool(testable)
        assert agreement, "PODEM and SAT ATPG must agree"
        if testable is False:
            redundant.append(fault)
    print(f"deterministic pass: {len(redundant)} provably redundant faults")
    for fault in redundant[:5]:
        print(f"  redundant: {fault.describe(aig)}")

    # -- 4. redundancy removal as optimization ----------------------------
    (optimized,), stats = remove_redundancies(aig, [root])
    print(f"redundancy removal: {stats.get('size_before'):.0f} -> "
          f"{stats.get('size_after'):.0f} AND gates "
          f"({stats.get('ties_applied', 0):.0f} wires tied)")

    # -- 5. equivalence checking as a comparison-gate fault ---------------
    fresh = Aig()
    a, b, c = fresh.add_inputs(3)
    lhs = fresh.and_(a, fresh.and_(b, c))          # a AND (b AND c)
    rhs = fresh.and_(fresh.and_(a, b), c)          # (a AND b) AND c
    verdict, _ = check_equal_via_atpg(fresh, lhs, rhs, engine="podem")
    print(f"\ncomparison-gate fault on associativity miter: "
          f"{'redundant -> circuits equal' if verdict else 'testable'}")
    different = or_(fresh, a, b)
    verdict, pattern = check_equal_via_atpg(fresh, lhs, different)
    names = {node: fresh.input_name(node) for node in fresh.inputs}
    witness = {names[n]: int(v) for n, v in sorted(pattern.items())}
    print(f"against OR(a,b): testable, distinguishing input {witness}")


if __name__ == "__main__":
    main()
