#!/usr/bin/env python3
"""Run every verification engine on one benchmark suite, side by side.

Reproduces the paper's framing in miniature: the circuit-based traversal
(reach_aig) against the BDD baseline, pure all-SAT pre-image, the Section-4
hybrid, BMC and k-induction — same designs, same verdicts, different costs.

The engine list is *derived from the registry* (every non-composite
engine), and the runs go through one :class:`repro.api.Session`, so the
whole suite shares a structural-hash result cache and reports progress
through events rather than polling.

Run:  python examples/engine_shootout.py
"""

from repro.api import Session, VerificationTask, engines_with
from repro.circuits import generators

BENCHMARKS = [
    ("mod_counter(5,20) safe", lambda: generators.mod_counter(5, 20)),
    ("mod_counter(5,20) bug", lambda: generators.mod_counter(5, 20, safe=False)),
    ("ring_counter(6) safe", lambda: generators.ring_counter(6)),
    ("arbiter(4) safe", lambda: generators.arbiter(4)),
    ("fifo_level(3) safe", lambda: generators.fifo_level(3)),
    ("fifo_level(3) bug", lambda: generators.fifo_level(3, safe=False)),
    ("bug_at_depth(8)", lambda: generators.bug_at_depth(8)),
]

# Every real engine in the registry, in registration order; the composite
# portfolio would just re-run the others.
METHODS = [spec.name for spec in engines_with(composite=False)]


def main() -> None:
    session = Session()
    header = f"{'design':<24}" + "".join(f"{m:>20}" for m in METHODS)
    print(header)
    print("-" * len(header))
    for name, build in BENCHMARKS:
        tasks = [
            VerificationTask(build(), engine=method, max_depth=60)
            for method in METHODS
        ]
        cells = {}

        def record(event):
            if event.kind != "task_finished":
                return
            result = event.result
            if result.failed:
                tag = f"cex@{result.trace.depth}"
            elif result.proved:
                tag = "proved"
            else:
                tag = "unknown"
            cells[event.task.engine] = f"{tag} {event.elapsed * 1000:6.0f}ms"

        session.verify_many(tasks, on_progress=record)
        print(f"{name:<24}" + "".join(
            cells[method].rjust(20) for method in METHODS
        ))
    print(
        "\nNotes: BMC cannot prove safe designs (unknown is expected); all "
        "other engines agree on every verdict, and counterexample depths "
        "are shortest paths."
    )


if __name__ == "__main__":
    main()
