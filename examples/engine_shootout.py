#!/usr/bin/env python3
"""Run every verification engine on one benchmark suite, side by side.

Reproduces the paper's framing in miniature: the circuit-based traversal
(reach_aig) against the BDD baseline, pure all-SAT pre-image, the Section-4
hybrid, BMC and k-induction — same designs, same verdicts, different costs.

Run:  python examples/engine_shootout.py
"""

import time

from repro.circuits import generators
from repro.mc import Status, verify

BENCHMARKS = [
    ("mod_counter(5,20) safe", lambda: generators.mod_counter(5, 20)),
    ("mod_counter(5,20) bug", lambda: generators.mod_counter(5, 20, safe=False)),
    ("ring_counter(6) safe", lambda: generators.ring_counter(6)),
    ("arbiter(4) safe", lambda: generators.arbiter(4)),
    ("fifo_level(3) safe", lambda: generators.fifo_level(3)),
    ("fifo_level(3) bug", lambda: generators.fifo_level(3, safe=False)),
    ("bug_at_depth(8)", lambda: generators.bug_at_depth(8)),
]

METHODS = [
    "reach_aig",          # the paper's engine
    "reach_aig_allsat",   # Ganai-style all-solutions pre-image
    "reach_aig_hybrid",   # Section 4 combination
    "reach_bdd",          # canonical baseline
    "bmc",                # falsification only
    "k_induction",
]


def main() -> None:
    header = f"{'design':<24}" + "".join(f"{m:>20}" for m in METHODS)
    print(header)
    print("-" * len(header))
    for name, build in BENCHMARKS:
        row = [f"{name:<24}"]
        for method in METHODS:
            start = time.perf_counter()
            result = verify(build(), method=method, max_depth=60)
            elapsed = time.perf_counter() - start
            if result.status is Status.FAILED:
                tag = f"cex@{result.trace.depth}"
            elif result.status is Status.PROVED:
                tag = "proved"
            else:
                tag = "unknown"
            row.append(f"{tag} {elapsed * 1000:6.0f}ms".rjust(20))
        print("".join(row))
    print(
        "\nNotes: BMC cannot prove safe designs (unknown is expected); all "
        "other engines agree on every verdict, and counterexample depths "
        "are shortest paths."
    )


if __name__ == "__main__":
    main()
