#!/usr/bin/env python3
"""Interchange formats: load ISCAS benchmarks, convert, model check.

Demonstrates the circuit I/O layer around the verification engines:

1. load the ISCAS-89 s27 benchmark from its ``.bench`` text,
2. convert it to BLIF and back, checking the round trip semantically,
3. attach an invariant and verify it with both the paper's AIG engine
   and the BDD baseline,
4. export the result for other tools.

Run:  python examples/file_formats.py
"""

from repro.api import Session
from repro.circuits.bench_format import parse_bench, serialize_bench
from repro.circuits.blif import parse_blif, serialize_blif
from repro.circuits.library import handshake, s27, s27_with_property


def main() -> None:
    # -- 1. the smallest ISCAS-89 benchmark ------------------------------
    netlist = s27()
    print(f"loaded {netlist.name}: {netlist.num_inputs} inputs, "
          f"{netlist.num_latches} latches, {netlist.aig.num_ands} ANDs")

    # -- 2. format round trip ---------------------------------------------
    blif_text = serialize_blif(netlist)
    recovered = parse_blif(blif_text)
    stimulus = [{n: (k + i) % 3 == 0 for i, n in
                 enumerate(netlist.input_nodes)} for k in range(8)]
    assert netlist.run_trace(stimulus) != [] and (
        [sorted(s.values()) for s in netlist.run_trace(stimulus)]
        == [sorted(s.values()) for s in recovered.run_trace(stimulus)]
    ), "BLIF round trip must preserve behaviour"
    print(f"BLIF round trip ok ({len(blif_text.splitlines())} lines)")

    # -- 3. verify an invariant on both engines ----------------------------
    session = Session()
    instance = s27_with_property()
    for method in ("reach_aig", "reach_bdd"):
        result = session.verify(instance, engine=method)
        print(f"s27 'never G5 and G6' via {method}: {result.status.value}")

    buggy = handshake(safe=False)
    result = session.verify(buggy, engine="reach_aig")
    print(f"buggy handshake: {result.status.value} "
          f"(counterexample depth {result.trace.depth})")

    # -- 4. export back to .bench ------------------------------------------
    text = serialize_bench(s27())
    reparsed = parse_bench(text)
    print(f"re-exported s27 as .bench: {len(text.splitlines())} lines, "
          f"{reparsed.aig.num_ands} ANDs after reparse")


if __name__ == "__main__":
    main()
