#!/usr/bin/env python3
"""Combinational equivalence checking with the merge-phase engines.

The paper's merge phase is "essentially a combinational equivalence
checking problem"; this example uses the same machinery directly to check
two structurally different implementations of one function — a ripple-
carry carry-out against a carry-lookahead-style formulation — and to catch
an injected bug.

Run:  python examples/equivalence_checking.py
"""

from repro.aig.graph import Aig, edge_not
from repro.aig.ops import and_all, or_, or_all, xor
from repro.sweep import prove_edges_equivalent


def ripple_carry_out(aig: Aig, a: list[int], b: list[int]) -> int:
    carry = 0
    for x, y in zip(a, b):
        generate = aig.and_(x, y)
        propagate = xor(aig, x, y)
        carry = or_(aig, generate, aig.and_(propagate, carry))
    return carry


def lookahead_carry_out(aig: Aig, a: list[int], b: list[int]) -> int:
    """c_out = OR_i (g_i AND AND_{j>i} p_j)  — flattened lookahead form."""
    generate = [aig.and_(x, y) for x, y in zip(a, b)]
    propagate = [xor(aig, x, y) for x, y in zip(a, b)]
    terms = []
    for i in range(len(a)):
        chain = and_all(aig, propagate[i + 1:])
        terms.append(aig.and_(generate[i], chain))
    return or_all(aig, terms)


def main() -> None:
    width = 8
    aig = Aig()
    a = aig.add_inputs(width, prefix="a")
    b = aig.add_inputs(width, prefix="b")

    ripple = ripple_carry_out(aig, a, b)
    lookahead = lookahead_carry_out(aig, a, b)
    print(f"ripple cone: {aig.cone_and_count(ripple)} ANDs, "
          f"lookahead cone: {aig.cone_and_count(lookahead)} ANDs")

    verdict, counterexample = prove_edges_equivalent(aig, ripple, lookahead)
    print(f"equivalent: {verdict}")
    assert verdict is True

    # Inject a bug: drop the propagate term of bit 3.
    def buggy_lookahead() -> int:
        generate = [aig.and_(x, y) for x, y in zip(a, b)]
        propagate = [xor(aig, x, y) for x, y in zip(a, b)]
        propagate[3] = generate[3]          # the "typo"
        terms = []
        for i in range(width):
            chain = and_all(aig, propagate[i + 1:])
            terms.append(aig.and_(generate[i], chain))
        return or_all(aig, terms)

    verdict, counterexample = prove_edges_equivalent(
        aig, ripple, buggy_lookahead()
    )
    print(f"\nbuggy implementation equivalent: {verdict}")
    assert verdict is False
    a_val = sum(counterexample.get(e >> 1, False) << i for i, e in enumerate(a))
    b_val = sum(counterexample.get(e >> 1, False) << i for i, e in enumerate(b))
    print(f"distinguishing input: a={a_val}, b={b_val} "
          f"(a+b carries out: {a_val + b_val >= 2**width})")


if __name__ == "__main__":
    main()
