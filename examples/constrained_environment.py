#!/usr/bin/env python3
"""Environment constraints: verifying a design under input assumptions.

A design is often only correct for the environments it was built for.
This example takes the *buggy* round-robin arbiter — grants follow
requests directly, so two simultaneous requests collide — and shows that
under the assumption "at most one request per cycle" it is actually safe:

1. unconstrained: every engine finds the collision;
2. constrained:   every engine proves mutual exclusion;
3. a weaker constraint leaves a narrower bug, and the counterexample
   trace provably respects the assumption.

Run:  python examples/constrained_environment.py
"""

from repro.aig.graph import edge_not
from repro.aig.ops import and_all
from repro.api import Session
from repro.circuits.generators import arbiter


def build(constrain: str | None):
    netlist = arbiter(3, safe=False)
    aig = netlist.aig
    requests = [2 * node for node in netlist.input_nodes]
    if constrain == "at_most_one":
        netlist.add_constraint(and_all(aig, [
            edge_not(aig.and_(requests[i], requests[j]))
            for i in range(3) for j in range(i + 1, 3)
        ]))
    elif constrain == "r0_r1_exclusive":
        netlist.add_constraint(edge_not(aig.and_(requests[0], requests[1])))
    return netlist


def main() -> None:
    session = Session()
    # -- 1. unconstrained: the bug is real -------------------------------
    result = session.verify(build(None), engine="reach_aig")
    print(f"unconstrained arbiter: {result.status.value} "
          f"(collision at depth {result.trace.depth})")

    # -- 2. assumed environment: the design is fine -----------------------
    for method in ("reach_aig", "reach_aig_fwd", "reach_bdd", "k_induction"):
        result = session.verify(build("at_most_one"), engine=method)
        print(f"  with 'at most one request' via {method}: "
              f"{result.status.value}")

    # -- 3. a weaker assumption leaves a narrower bug ---------------------
    result = session.verify(build("r0_r1_exclusive"), engine="reach_aig")
    netlist = build("r0_r1_exclusive")
    violation = result.trace.violation_inputs
    requests = {f"req{k}": int(violation[node])
                for k, node in enumerate(netlist.input_nodes)}
    print(f"\nwith only req0/req1 exclusive: {result.status.value}, "
          f"colliding requests {requests}")
    assert result.trace.validate(netlist), "trace must respect the assumption"
    assert not (requests["req0"] and requests["req1"])


if __name__ == "__main__":
    main()
