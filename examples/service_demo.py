#!/usr/bin/env python3
"""Verification-as-a-service: the durable queue and HTTP API end to end.

This drives the whole `repro.svc` stack inside one process:

1. start a :class:`VerificationServer` on a temporary SQLite store —
   HTTP front, durable job queue, and an in-process worker,
2. submit a safe and a buggy circuit over the wire and poll until both
   verdicts land (the PROVED one carries its inductive-invariant
   certificate, stored content-addressed),
3. cancel a queued job and read the healthcheck/metrics gauges,
4. show durability: reopen the same store cold and re-serve the PROVED
   verdict from the keyed result cache without running any engine.

Run:  python examples/service_demo.py
"""

import json
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.circuits import generators
from repro.circuits.parse import serialize_netlist
from repro.portfolio.cache import ResultCache
from repro.svc import VerificationServer


def call(base: str, path: str, payload: dict | None = None) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def wait_terminal(base: str, job_id: int) -> dict:
    while True:
        status = call(base, f"/jobs/{job_id}")
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.05)


def main() -> None:
    safe = generators.mod_counter(width=4, modulus=12, safe=True)
    buggy = generators.mod_counter(width=4, modulus=12, safe=False)
    store_path = Path(tempfile.mkdtemp()) / "service.sqlite"

    # -- 1. the service bundle: store + queue + HTTP + one worker --------
    with VerificationServer(
        store_path, workers=1, worker_processes=False, worker_poll=0.05
    ) as server:
        health = call(server.url, "/healthz")
        print(f"serving on {server.url}  "
              f"(schema v{health['schema_version']}, "
              f"{len(health['engines'])} engines)")

        # -- 2. two submissions over the wire ---------------------------
        proved_id = call(server.url, "/submit", {
            "netlist": serialize_netlist(safe),
            "method": "pdr", "name": "safe-counter",
        })["job_id"]
        failed_id = call(server.url, "/submit", {
            "netlist": serialize_netlist(buggy),
            "method": "bmc", "name": "buggy-counter",
        })["job_id"]
        for job_id in (proved_id, failed_id):
            status = wait_terminal(server.url, job_id)
            result = call(server.url, f"/jobs/{job_id}/result")["result"]
            extra = ""
            if result.get("certificate"):
                extra = (f"  [{len(result['certificate']['clauses'])}"
                         "-clause certificate]")
            if result.get("trace"):
                depth = len(result["trace"]["states"]) - 1
                extra = f"  [counterexample depth {depth}]"
            print(f"job {job_id} ({status['name']}): "
                  f"{result['status']}{extra}")

        # -- 3. wire-level cancellation + gauges ------------------------
        doomed_id = call(server.url, "/submit", {
            "netlist": serialize_netlist(safe),
            "method": "portfolio", "name": "doomed", "priority": -5,
        })["job_id"]
        call(server.url, f"/jobs/{doomed_id}/cancel", {})  # {} = POST
        print(f"job {doomed_id} (doomed): "
              f"{wait_terminal(server.url, doomed_id)['state']}")
        metrics = call(server.url, "/metrics")
        print(f"metrics: {metrics['jobs']}  "
              f"{metrics['certificates']} certificate(s) stored")

    # -- 4. durability: a cold process re-serves the PROVED verdict -----
    cache = ResultCache(store_path)
    start = time.perf_counter()
    hit = cache.lookup(safe, "pdr", 100)
    elapsed_ms = (time.perf_counter() - start) * 1000
    assert hit is not None and hit.proved and hit.certificate is not None
    print(f"cold cache re-served the proof in {elapsed_ms:.2f}ms "
          f"({len(hit.certificate.clauses)} clauses intact)")


if __name__ == "__main__":
    main()
